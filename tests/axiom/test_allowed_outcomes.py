"""The axiomatic allowed-outcome table over the whole litmus corpus.

The central exactness pin: for every test × model × protocol the
enumeration must equal the closed-form oracle — relaxed outcomes appear
exactly for relaxable tests on the buffered machine, and nowhere else.
This replaces the old "iriw is documented conservative" hand-wave with
a computed verdict.
"""

import pytest

from repro.axiom import allowed_outcomes
from repro.static.drf import check_labels
from repro.verify.litmus import (
    LITMUS_TESTS,
    MODELS,
    allowed_outcomes as closed_form,
)

TESTS = {t.name: t for t in LITMUS_TESTS}
BUFFERED = ("bc", "wo", "rc")


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("test", LITMUS_TESTS, ids=lambda t: t.name)
def test_axiomatic_equals_closed_form_everywhere(test, model):
    for proto in test.protocols:
        assert allowed_outcomes(test, model, proto) == closed_form(
            test, proto, model
        ), (test.name, proto, model)


@pytest.mark.parametrize("test", LITMUS_TESTS, ids=lambda t: t.name)
def test_sc_enumeration_rederives_every_hand_written_sc_set(test):
    """The enumerator independently validates each test's sc_outcomes —
    a typo in a hand-derived set fails here, not in a flaky sweep."""
    assert allowed_outcomes(test, "sc") == test.sc_outcomes


@pytest.mark.parametrize("model", BUFFERED)
def test_relaxed_sets_are_exactly_the_relaxable_tests(model):
    for test in LITMUS_TESTS:
        want = test.sc_outcomes
        if check_labels(test).relaxable:
            want = want | test.relaxed_outcomes
        assert allowed_outcomes(test, model) == want, (test.name, model)


def test_iriw_verdict_is_computed_not_documented():
    """This machine's writes are multi-copy atomic (a global read blocks
    until the home has the write), so iriw's relaxed outcome is
    axiomatically forbidden under every model — the old conservative
    allowance is gone from the closed form too."""
    t = TESTS["iriw"]
    for model in MODELS:
        assert allowed_outcomes(t, model) == t.sc_outcomes
        assert closed_form(t, "primitives", model) == t.sc_outcomes


def test_bc_and_rc_are_axiomatically_identical():
    """bc and rc share drain kinds (release/barrier/flush) and both
    delay shared writes: the release ack is latency, not visibility, so
    their allowed sets coincide on every test."""
    for t in LITMUS_TESTS:
        for proto in t.protocols:
            assert allowed_outcomes(t, "bc", proto) == allowed_outcomes(
                t, "rc", proto
            ), (t.name, proto)


def test_model_chain_is_monotone_on_the_corpus():
    """A(sc) ⊆ A(wo) ⊆ A(rc) = A(bc): each weaker model admits a
    superset.  (The ISSUE's "BC ⊆ WO ⊆ RC" phrasing has the order of
    strength backwards for this machine: wo drains on acquire too, so
    it sits strictly between sc and rc/bc.)"""
    for t in LITMUS_TESTS:
        a_sc = allowed_outcomes(t, "sc")
        a_wo = allowed_outcomes(t, "wo")
        a_rc = allowed_outcomes(t, "rc")
        assert a_sc <= a_wo <= a_rc, t.name


def test_relaxed_admitting_tests_on_the_corpus():
    relaxed_admitting = {
        t.name
        for t in LITMUS_TESTS
        if allowed_outcomes(t, "bc") != allowed_outcomes(t, "sc")
    }
    # 2+2w joins the relaxables; corw2 does not — its "relaxed" outcome is
    # coherence-forbidden (per-location order), which write buffering never
    # relaxes, so bc admits nothing beyond sc there.
    assert relaxed_admitting == {"mp", "sb", "s", "r", "isa2", "2+2w"}
