"""Property-based exactness of the partial-order-reduced engine.

The corpus referee (:mod:`tests.axiom.test_scale`) pins reduced ≡
exhaustive on the hand-written litmus tests; this file holds the same
equality over *randomly generated* programs — every protocol × model
pair, with and without the DRF short-circuit — so the reduction's
pruning has no blind spot the corpus happened to miss.

Pinned regressions at the bottom re-run deterministic shapes that
exercise the reduction's trickiest paths (deadlockable lock+barrier
interplay, same-location write stacks, read-only programs).
"""

import pytest
from hypothesis import given, settings

from repro.axiom import (
    allowed_outcomes_for_graph,
    ax_model_for,
    litmus_event_graph,
    reduced_outcomes_for_graph,
)
from repro.static.drf import classify_litmus
from repro.verify.litmus import ACQ, BAR, MODELS, PROTOCOLS, LitmusTest, R, REL, W

from .test_properties import small_litmus

_AX = {
    (model, proto): ax_model_for(model, proto)
    for model in MODELS
    for proto in PROTOCOLS
}


@given(small_litmus())
@settings(max_examples=60, deadline=None)
def test_reduced_equals_exhaustive_on_random_programs(test):
    g = litmus_event_graph(test)
    for key, ax in _AX.items():
        assert reduced_outcomes_for_graph(g, ax) == \
            allowed_outcomes_for_graph(g, ax), key


@given(small_litmus())
@settings(max_examples=40, deadline=None)
def test_drf_shortcircuit_does_not_change_the_answer(test):
    """R0 (non-relaxable ⇒ drop write delay) is an *optimization*: wiring
    the classifier's verdict in must leave every outcome set untouched."""
    g = litmus_event_graph(test)
    cls = classify_litmus(test.threads)
    for key, ax in _AX.items():
        with_cls = reduced_outcomes_for_graph(g, ax, classification=cls)
        without = reduced_outcomes_for_graph(g, ax)
        assert with_cls == without, key


# -- pinned regressions -------------------------------------------------------
#: Deterministic shapes covering the reduction's hard paths.  None of
#: these ever disagreed — they pin the strategy's most fragile draws so a
#: future engine change fails loudly without waiting on hypothesis luck.
_PINNED = (
    # Lock+barrier deadlock: whichever thread wins the lock waits at the
    # barrier still holding it, and the loser never arrives — *every*
    # candidate execution is cyclic, so the correct answer is the empty
    # set; the reduced engine must not "helpfully" invent an outcome.
    LitmusTest(
        name="pin-deadlock", description="", threads=(
            (ACQ("L"), W("x", 1), BAR("b"), REL("L")),
            (ACQ("L"), R("x", "r0"), BAR("b"), REL("L")),
        ),
        sc_outcomes=frozenset(), relaxed_outcomes=frozenset(),
    ),
    # Same-location write stack: co enumeration dominates; R2's
    # incremental per-location ordering must match the referee exactly.
    LitmusTest(
        name="pin-co-stack", description="", threads=(
            (W("x", 1), W("x", 2)),
            (W("x", 3), R("x", "r0")),
            (R("x", "r1"),),
        ),
        sc_outcomes=frozenset(), relaxed_outcomes=frozenset(),
    ),
    # Read-only program: no co/rf choices at all; the degenerate case.
    LitmusTest(
        name="pin-read-only", description="", threads=(
            (R("x", "r0"), R("y", "r1")),
            (R("y", "r2"),),
        ),
        sc_outcomes=frozenset(), relaxed_outcomes=frozenset(),
    ),
    # Unsynchronized write-first racer across locations: the shape where
    # write-delay relaxation actually widens the set.
    LitmusTest(
        name="pin-racer", description="", threads=(
            (W("x", 1), W("y", 1)),
            (W("y", 2), W("x", 2), R("x", "r0")),
        ),
        sc_outcomes=frozenset(), relaxed_outcomes=frozenset(),
    ),
)


@pytest.mark.parametrize("test", _PINNED, ids=lambda t: t.name)
def test_pinned_regressions(test):
    g = litmus_event_graph(test)
    cls = classify_litmus(test.threads)
    for key, ax in _AX.items():
        exhaustive = allowed_outcomes_for_graph(g, ax)
        assert reduced_outcomes_for_graph(g, ax) == exhaustive, key
        assert reduced_outcomes_for_graph(g, ax, classification=cls) == \
            exhaustive, key


def test_pinned_deadlock_shape_is_really_empty():
    """The deadlock pin must stay a deadlock (guards the pin itself)."""
    g = litmus_event_graph(_PINNED[0])
    assert allowed_outcomes_for_graph(g, ax_model_for("sc")) == frozenset()
