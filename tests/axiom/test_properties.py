"""Property-based tests over randomly generated litmus programs.

Two structural theorems of the axiomatic model, checked on programs the
corpus never hand-picked:

* **monotonicity** — A(sc) ⊆ A(wo) ⊆ A(rc) = A(bc): every outcome a
  stronger model admits survives under a weaker one, and bc/rc coincide
  (same drain kinds; the release ack is latency, not visibility);
* **DRF guarantee** — a program the analyzer calls non-relaxable (in
  particular every properly-labeled / data-race-free program) admits
  exactly its SC outcomes under all four models.
"""

from hypothesis import given, settings, strategies as st

from repro.axiom import allowed_outcomes_for_graph, ax_model_for, litmus_event_graph
from repro.static.drf import classify_litmus
from repro.verify.litmus import ACQ, BAR, LitmusTest, R, REL, W

_AX = {name: ax_model_for(name) for name in ("sc", "bc", "wo", "rc")}


@st.composite
def small_litmus(draw):
    """2–3 threads of 1–2 accesses over {x, y}, optionally wrapped in a
    shared lock and synchronized by a barrier — small enough that full
    enumeration is instant, rich enough to race or not."""
    n_threads = draw(st.integers(2, 3))
    use_lock = draw(st.booleans())
    use_bar = draw(st.booleans())
    reg = 0
    threads = []
    for _ in range(n_threads):
        ops = []
        for _ in range(draw(st.integers(1, 2))):
            var = draw(st.sampled_from(("x", "y")))
            if draw(st.booleans()):
                ops.append(W(var, draw(st.integers(1, 2))))
            else:
                ops.append(R(var, f"r{reg}"))
                reg += 1
        if use_lock and draw(st.booleans()):
            ops = [ACQ("L"), *ops, REL("L")]
        if use_bar:
            ops.insert(draw(st.integers(0, len(ops))), BAR("b"))
        threads.append(tuple(ops))
    return LitmusTest(
        name="prop", description="", threads=tuple(threads),
        sc_outcomes=frozenset(), relaxed_outcomes=frozenset(),
    )


def _allowed(test):
    g = litmus_event_graph(test)
    return {name: allowed_outcomes_for_graph(g, ax) for name, ax in _AX.items()}


@given(small_litmus())
@settings(max_examples=60, deadline=None)
def test_model_chain_is_monotone(test):
    a = _allowed(test)
    kinds = {op.kind for ops in test.threads for op in ops}
    if not ("acquire" in kinds and "barrier" in kinds):
        # Lock+barrier programs can deadlock (a thread holding the lock
        # waits at the barrier for a thread stuck in acquire) — then
        # every candidate execution is cyclic and the empty set is
        # correct.  Anything else always has a consistent execution.
        assert a["sc"], "program without lock/barrier interplay must execute"
    assert a["sc"] <= a["wo"] <= a["rc"]
    assert a["rc"] == a["bc"]


@given(small_litmus())
@settings(max_examples=60, deadline=None)
def test_non_relaxable_programs_are_sc_only(test):
    cls = classify_litmus(test.threads)
    a = _allowed(test)
    if not cls.relaxable:
        assert a["bc"] == a["wo"] == a["rc"] == a["sc"], cls
    if cls.properly_labeled:  # the DRF guarantee, by name
        assert a["bc"] == a["sc"]


@given(small_litmus())
@settings(max_examples=40, deadline=None)
def test_relaxation_never_loses_sc_outcomes(test):
    """Weak models widen, never shift: the SC set is always included,
    so a weak machine can still legitimately look sequentially
    consistent on any single run."""
    a = _allowed(test)
    for name in ("bc", "wo", "rc"):
        assert a["sc"] <= a[name]
