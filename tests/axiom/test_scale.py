"""The partial-order-reduced engine: exactness, scale, and projection.

Four pins:

* **corpus referee** — the reduced engine is bit-identical to the
  exhaustive enumerator on every litmus test × model × protocol row (the
  exhaustive engine is kept verbatim as the referee);
* **scale** — a full-size fuzzer program (4 threads × 3 rounds × 3 atoms)
  enumerates in well under the 10-second budget, on inputs whose
  exhaustive candidate space is astronomically beyond reach;
* **decomposition** — the round-by-round composition equals one reduced
  enumeration of the whole program graph;
* **projection** — the scale engine's consume sets are contained in both
  independent oracles (DRF-derived and event-graph closure), so using it
  as a fuzz oracle can only tighten, never miss, a true failure.
"""

import time

import numpy as np
import pytest

from repro.axiom import (
    AxiomBudgetExceeded,
    allowed_outcomes,
    allowed_outcomes_for_graph,
    ax_model_for,
    axiom_consume_allowed,
    estimate_candidate_space,
    fuzz_allowed_outcomes,
    fuzz_consume_allowed,
    fuzz_program_event_graph,
    litmus_event_graph,
    reduced_outcomes_for_graph,
)
from repro.axiom.scale import _FUZZ_AX
from repro.static.drf import derive_consume_allowed
from repro.verify.fuzz import gen_program
from repro.verify.litmus import LITMUS_TESTS, MODELS

FULL_SIZE = dict(n_threads=4, n_rounds=3, max_atoms_per_round=3)


# -- corpus referee ----------------------------------------------------------

@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("test", LITMUS_TESTS, ids=lambda t: t.name)
def test_reduced_is_bit_identical_to_exhaustive_on_the_corpus(test, model):
    for proto in test.protocols:
        reduced = allowed_outcomes(test, model, proto, engine="reduced")
        exhaustive = allowed_outcomes(test, model, proto, engine="exhaustive")
        assert reduced == exhaustive, (test.name, model, proto)


@pytest.mark.parametrize("test", LITMUS_TESTS, ids=lambda t: t.name)
def test_reduced_engine_without_drf_shortcircuit_still_agrees(test):
    """Exactness does not lean on the DRF short-circuit: with no
    classification supplied, the search layers alone must match."""
    g = litmus_event_graph(test)
    for model in MODELS:
        ax = ax_model_for(model)
        assert reduced_outcomes_for_graph(g, ax, test.finals) == \
            allowed_outcomes_for_graph(g, ax, test.finals), (test.name, model)


# -- scale -------------------------------------------------------------------

def test_full_size_fuzzer_programs_enumerate_within_budget():
    rng = np.random.default_rng(0)
    worst = 0.0
    for _ in range(5):
        program = gen_program(rng, **FULL_SIZE)
        t0 = time.monotonic()
        outcomes = fuzz_allowed_outcomes(program, budget_seconds=10.0)
        worst = max(worst, time.monotonic() - t0)
        assert outcomes  # a well-synchronized program always executes
    assert worst < 10.0


def test_exhaustive_cannot_finish_where_reduced_does():
    """The referee is genuinely out of its depth at full size: on the
    pinned program (seed 4 — the naive candidate estimate overstates the
    referee's *pruned* search, so not every full-size draw defeats it)
    a subprocess running the exhaustive enumerator is still going when
    killed, while the reduced engine answers the same graph well inside
    the ten-second budget."""
    import subprocess
    import sys

    rng = np.random.default_rng(4)
    program = gen_program(rng, **FULL_SIZE)
    g = fuzz_program_event_graph(program)
    assert estimate_candidate_space(g) > 1e13

    t0 = time.monotonic()
    reduced = reduced_outcomes_for_graph(g, _FUZZ_AX)
    assert time.monotonic() - t0 < 10.0
    assert reduced

    code = (
        "import numpy as np\n"
        "from repro.verify.fuzz import gen_program\n"
        "from repro.axiom import fuzz_program_event_graph, allowed_outcomes_for_graph\n"
        "from repro.axiom.scale import _FUZZ_AX\n"
        "p = gen_program(np.random.default_rng(4), n_threads=4, n_rounds=3,"
        " max_atoms_per_round=3)\n"
        "allowed_outcomes_for_graph(fuzz_program_event_graph(p), _FUZZ_AX)\n"
        "print('finished')\n"
    )
    try:
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, timeout=3
        )
        finished = "finished" in proc.stdout
    except subprocess.TimeoutExpired:
        finished = False
    assert not finished, "exhaustive referee unexpectedly finished at full size"


def test_budget_exceeded_raises():
    rng = np.random.default_rng(3)
    program = gen_program(rng, **FULL_SIZE)
    with pytest.raises(AxiomBudgetExceeded):
        fuzz_allowed_outcomes(program, budget_seconds=1e-9)


# -- round decomposition -----------------------------------------------------

def test_round_decomposition_matches_whole_graph_enumeration():
    """ROUND_BARRIER drains every buffer, so rounds are independent given
    the deterministic carry state; the composed outcome set must equal one
    reduced enumeration over the whole program graph."""
    rng = np.random.default_rng(7)
    for _ in range(12):
        program = gen_program(rng, n_threads=3, n_rounds=2, max_atoms_per_round=2)
        whole = reduced_outcomes_for_graph(
            fuzz_program_event_graph(program), _FUZZ_AX, atomic_inc=True
        )
        assert fuzz_allowed_outcomes(program) == whole, program


def test_small_fuzz_graphs_reduced_equals_exhaustive():
    """On graphs small enough for the referee, the engines agree with no
    atomicity hint (the exhaustive engine has no rmw-atomicity axiom)."""
    rng = np.random.default_rng(11)
    checked = 0
    for _ in range(40):
        program = gen_program(rng, n_threads=2, n_rounds=1, max_atoms_per_round=2)
        g = fuzz_program_event_graph(program)
        if estimate_candidate_space(g) > 50_000:
            continue  # keep the referee instant
        assert reduced_outcomes_for_graph(g, _FUZZ_AX) == \
            allowed_outcomes_for_graph(g, _FUZZ_AX), program
        checked += 1
    assert checked >= 10


# -- consume projection ------------------------------------------------------

def test_consume_projection_is_contained_in_both_oracles():
    """allowed ⊇ observable must survive the oracle swap: the scale
    engine's per-consume sets may only be tighter than the DRF-derived
    and closure-based sets (both sound over-approximations)."""
    rng = np.random.default_rng(19)
    consumes = 0
    for _ in range(30):
        program = gen_program(rng, n_threads=3, n_rounds=2, max_atoms_per_round=2)
        for ri, rnd in enumerate(program.rounds):
            for t, atoms in enumerate(rnd):
                for atom in atoms:
                    if atom.kind != "consume":
                        continue
                    scale_set = fuzz_consume_allowed(program, ri, atom.arg)
                    assert scale_set <= derive_consume_allowed(program, ri, atom.arg)
                    assert scale_set <= axiom_consume_allowed(program, ri, atom.arg)
                    consumes += 1
    assert consumes >= 20
