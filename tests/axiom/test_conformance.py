"""Single-execution conformance over real workload traces.

The acceptance pins for :mod:`repro.axiom.conformance`:

* clean traces of the tier-1 workloads (syncmodel, workqueue) pass with
  real coverage — global writes performed, critical sections paired;
* a seeded mutation of a passing trace is flagged (the checker is not
  vacuous): inverting one writer's same-word perform order, or deleting
  a perform that a release drained;
* a machine running an intentionally broken model
  (:class:`~repro.consistency.faults.NoReleaseFenceBC`) fails the drain
  bound on its very first trace;
* the fault/recovery layer preserves the model: a run with targeted
  message drops — retries and all — still conformance-checks clean, its
  replayed writes collapsed to single logical events;
* the CLI (``--conform``) keeps its exit-code contract.
"""

import json

import numpy as np
import pytest

from repro.axiom import check_trace, conformance_report
from repro.axiom.cli import main as axiom_main
from repro.consistency.faults import NoReleaseFenceBC
from repro.faults.plan import FaultSpec
from repro.obs import ObsParams
from repro.system.config import MachineConfig
from repro.system.machine import Machine
from repro.verify.fuzz import gen_program, run_program
from repro.workloads.syncmodel import SyncModelParams, SyncModelWorkload
from repro.workloads.workqueue import WorkQueueParams, WorkQueueWorkload

FULL_SIZE = dict(n_threads=4, n_rounds=3, max_atoms_per_round=3)


def _sync_machine(seed=1):
    """A syncmodel run hot enough to exercise every check: elevated
    shared/lock ratios so tasks issue real global writes, not just
    cache-resident traffic."""
    cfg = MachineConfig(
        n_nodes=4, cache_blocks=128, cache_assoc=2, seed=seed, obs=ObsParams()
    )
    machine = Machine(cfg, protocol="primitives")
    params = SyncModelParams(
        tasks_per_node=3, grain_size=40, shared_ratio=0.3,
        read_ratio=0.6, lock_ratio=0.7,
    )
    SyncModelWorkload(machine, params, lock_scheme="cbl", consistency="bc").run()
    return machine


def _events(machine):
    return [e.to_dict() for e in machine.obs.events]


# -- clean workload traces pass with coverage --------------------------------

def test_syncmodel_trace_conforms():
    machine = _sync_machine()
    report = check_trace(machine.obs.events)
    assert report.ok, report.describe()
    assert report.counts["performs"] >= 20
    assert report.counts["issues"] == report.counts["performs"]
    assert report.counts["drain_spans"] > 0
    assert report.counts["sections"] > 0
    assert report.counts["duplicates_collapsed"] == 0


def test_workqueue_trace_conforms():
    cfg = MachineConfig(
        n_nodes=4, cache_blocks=128, cache_assoc=2, seed=2, obs=ObsParams()
    )
    machine = Machine(cfg, protocol="primitives")
    params = WorkQueueParams(n_tasks=12, grain_size=30, shared_ratio_task=0.2)
    WorkQueueWorkload(machine, params, lock_scheme="cbl", consistency="bc").run()
    report = check_trace(machine.obs.events)
    assert report.ok, report.describe()
    assert report.counts["performs"] > 0
    assert report.counts["sections"] > 0


def test_report_shapes():
    machine = _sync_machine()
    report = check_trace(machine.obs.events)
    assert "conformance: OK" in report.describe()
    d = report.to_dict()
    assert d["ok"] is True and d["violations"] == []
    assert d["counts"]["performs"] == report.counts["performs"]


# -- seeded mutations are flagged (the checker is not vacuous) ----------------

def _mutate_swap_same_writer_performs(events):
    """Invert one writer's same-word perform order at the home."""
    by_key = {}
    for i, ev in enumerate(events):
        if ev.get("cat") == "mem" and ev.get("name") == "mem.perform":
            args = ev["args"]
            by_key.setdefault((args["src"], args["word"]), []).append(i)
    for key in sorted(by_key):
        idx = by_key[key]
        if len(idx) >= 2:
            i, j = idx[0], idx[1]
            events[i], events[j] = events[j], events[i]
            return events
    pytest.skip("no writer performed the same word twice in this trace")


def _mutate_drop_drained_perform(events):
    """Delete a perform whose issue a later release claims to have
    drained — the signature of a lost global write."""
    for i, ev in enumerate(events):
        if ev.get("cat") == "mem" and ev.get("name") == "mem.perform":
            del events[i]
            return events
    pytest.skip("no performs in this trace")


def test_swapped_perform_order_is_flagged():
    events = _mutate_swap_same_writer_performs(_events(_sync_machine()))
    report = check_trace(events)
    assert not report.ok
    assert "same-word-order" in {v.kind for v in report.violations}


def test_dropped_perform_is_flagged():
    events = _mutate_drop_drained_perform(_events(_sync_machine()))
    report = check_trace(events)
    assert not report.ok
    assert "drain-bound" in {v.kind for v in report.violations}


# -- broken model fails the drain bound ---------------------------------------

def test_no_release_fence_model_fails_conformance(tmp_path):
    """The fault model that skips FLUSH-BUFFER before CP-Synch leaks
    buffered writes past the release — exactly the drain-bound axiom."""
    program = gen_program(np.random.default_rng(11), **FULL_SIZE)
    path = str(tmp_path / "broken.trace")
    run_program(
        program, "primitives", NoReleaseFenceBC(), seed=0, jitter=4.0,
        trace_path=path,
    )
    report = conformance_report(path)
    assert not report.ok
    assert {v.kind for v in report.violations} == {"drain-bound"}
    # The honest model on the identical program/schedule passes.
    clean = str(tmp_path / "clean.trace")
    run_program(program, "primitives", "bc", seed=0, jitter=4.0, trace_path=clean)
    assert conformance_report(clean).ok


# -- fault/recovery layer preserves the model ---------------------------------

def test_targeted_drop_recovery_conforms():
    """Retried/replayed global writes collapse to single logical events:
    a run that provably lost and re-sent writes still satisfies every
    axiom, with no duplicate performs surviving to the trace."""
    cfg = MachineConfig(
        n_nodes=8, cache_blocks=64, cache_assoc=2, seed=7, obs=ObsParams()
    )
    spec = FaultSpec(
        targeted=(("GLOBAL_WRITE", 2, 3), ("GLOBAL_WRITE_ACK", 1, 2)), seed=3
    )
    machine = Machine(cfg, "primitives", faults=spec)
    lock_block = machine.alloc_block()
    bar_block = machine.alloc_block()
    ctr = machine.alloc_word()
    machine.poke(ctr, 0)

    def worker(t):
        proc = machine.processor(t % 8, consistency="bc")
        machine._processors.append(proc)

        def body():
            for _ in range(3):
                yield from proc.compute(5 + t)
                yield from proc.model.pre_acquire(proc)
                yield from proc.node.cbl.acquire(lock_block, "write")
                value = yield from proc.read_global(ctr)
                yield from proc.shared_write(ctr, value + 1)
                yield from proc.model.pre_release(proc)
                yield from proc.node.cbl.release(
                    lock_block, want_ack=proc.model.release_wants_ack
                )
                yield from proc.rmw(ctr, "fetch_add", 0)
            yield from proc.node.barrier_engine.wait(bar_block, 4)

        return body()

    for t in range(4):
        machine.spawn(worker(t), name=f"w{t}")
    machine.run_all(max_cycles=2_000_000)
    metrics = machine.metrics()
    assert metrics.retries > 0  # recovery actually happened
    assert metrics.faults["fault.targeted_drops"] > 0
    report = check_trace(machine.obs.events)
    assert report.ok, report.describe()
    assert report.counts["rmws"] >= 12
    assert report.counts["duplicates_collapsed"] == 0


# -- duplicate collapse (defense beyond the home's dedup) ---------------------

def _perform(index_ts, word, value, src, entry):
    return {
        "ts": index_ts, "ph": "i", "name": "mem.perform", "cat": "mem",
        "tid": 0, "args": {"word": word, "value": value, "src": src, "entry": entry},
    }


def test_duplicate_perform_same_value_collapses():
    events = [_perform(1.0, 5, 42, 0, 0), _perform(2.0, 5, 42, 0, 0)]
    report = check_trace(events)
    assert report.ok
    assert report.counts["duplicates_collapsed"] == 1
    assert report.counts["performs"] == 1


def test_duplicate_perform_conflicting_value_is_flagged():
    events = [_perform(1.0, 5, 42, 0, 0), _perform(2.0, 5, 43, 0, 0)]
    report = check_trace(events)
    assert not report.ok
    assert [v.kind for v in report.violations] == ["duplicate-perform"]


# -- CLI exit codes -----------------------------------------------------------

def test_cli_conform_exit_codes(tmp_path, capsys):
    program = gen_program(np.random.default_rng(11), **FULL_SIZE)
    clean = str(tmp_path / "clean.trace")
    run_program(program, "primitives", "bc", seed=0, jitter=4.0, trace_path=clean)
    verdict = str(tmp_path / "verdict.json")
    assert axiom_main(["--conform", clean, "--json", verdict]) == 0
    assert json.load(open(verdict))["ok"] is True
    assert "conformance: OK" in capsys.readouterr().out

    broken = str(tmp_path / "broken.trace")
    run_program(
        program, "primitives", NoReleaseFenceBC(), seed=0, jitter=4.0,
        trace_path=broken,
    )
    assert axiom_main(["--conform", broken, "-q"]) == 1

    assert axiom_main(["--conform", str(tmp_path / "missing.trace")]) == 2


def test_cli_at_scale_writes_artifact(tmp_path, capsys):
    out = str(tmp_path / "scale.json")
    assert axiom_main(
        ["--at-scale", "--programs", "2", "--budget-seconds", "30", "--json", out]
    ) == 0
    data = json.load(open(out))
    assert data["budget_seconds"] == 30.0
    assert [r["ok"] for r in data["rows"]] == [True, True]
    assert all(r["exhaustive_space"] > 1 for r in data["rows"])
    assert "at-scale sweep OK" in capsys.readouterr().out
