"""Candidate-execution enumeration (:mod:`repro.axiom.enumerate`).

Unit-level pins on the enumerator itself: executions carry coherent
rf/co witnesses, the per-word chain constrains coherence order, lock
orders generate both critical-section interleavings, and the issue-order
closure keeps future writes out of reads-from — the soundness property
whose absence once admitted a machine-impossible mp+lock outcome.
"""

from repro.axiom import (
    allowed_outcomes,
    ax_model_for,
    count_executions,
    enumerate_executions,
    litmus_event_graph,
)
from repro.verify.litmus import LITMUS_TESTS, outcome

TESTS = {t.name: t for t in LITMUS_TESTS}


def test_sb_sc_enumeration_matches_hand_derived_set():
    assert allowed_outcomes(TESTS["sb"], "sc") == TESTS["sb"].sc_outcomes


def test_executions_carry_checkable_witnesses():
    g = litmus_event_graph(TESTS["sb"])
    ax = ax_model_for("bc")
    execs = list(enumerate_executions(g, ax))
    assert execs
    relaxed = [e for e in execs if e.outcome == outcome(r0=0, r1=0)]
    assert relaxed, "bc must admit sb's store-buffering outcome"
    for ex in execs:
        rf = dict(ex.rf)
        co = dict(ex.co)
        # every read has a writer; every co starts at the init write
        assert set(rf) == set(g.reads())
        for var, order in co.items():
            assert order[0] == g.init_of[var]


def test_coww_coherence_respects_the_per_word_chain():
    """t0 writes x=1 then x=2: no execution may order 2 before 1, so the
    final value 1 (co ending at the first write) never appears."""
    t = TESTS["coww"]
    g = litmus_event_graph(t)
    w1, w2 = g.threads[0]
    for model in ("sc", "bc", "wo", "rc"):
        for ex in enumerate_executions(g, ax_model_for(model), finals=t.finals):
            order = dict(ex.co)["x"]
            assert order.index(w1) < order.index(w2), (model, ex)


def test_lock_order_enumeration_reaches_both_interleavings():
    t = TESTS["lock-inc"]
    g = litmus_event_graph(t)
    orders = {ex.lock_order for ex in enumerate_executions(g, ax_model_for("sc"), finals=t.finals)}
    assert orders == {(("L", (0, 1)),), (("L", (1, 0)),)}


def test_issue_order_excludes_future_writes():
    """The mp+lock soundness pin: under the reader-first lock order the
    writer's delayed W(x) has no *performed* po edge to W(t), but the
    reader's R(t) must still never read the writer's W(t) — the writer
    has not issued it yet when the reader holds the lock.  Dropping the
    issue-order closure admitted (r0=1, r1=0) here; the machine can
    never produce it."""
    t = TESTS["mp+lock"]
    for model in ("bc", "wo", "rc"):
        assert allowed_outcomes(t, model) == t.sc_outcomes, model


def test_delayed_writes_are_transparent_to_the_ordering_chain():
    """Found by the hypothesis monotonicity property: a read whose only
    po predecessor is a delayed write still issues after the thread's
    earlier barrier completed — only the write's *performance* floats.
    Without chain transparency the enumerator let t0's read miss the
    x-write that t2's barrier arrival had already drained, admitting a
    machine-impossible outcome."""
    from repro.axiom import allowed_outcomes_for_graph
    from repro.verify.litmus import ACQ, BAR, LitmusTest, R, REL, W, outcome

    t = LitmusTest(
        name="chain-transparency", description="",
        threads=(
            (BAR("b"), W("y", 1), R("x", "r0")),
            (BAR("b"), R("x", "r1")),
            (ACQ("L"), W("x", 1), BAR("b"), REL("L")),
        ),
        sc_outcomes=frozenset(), relaxed_outcomes=frozenset(),
    )
    g = litmus_event_graph(t)
    for model in ("sc", "bc", "wo", "rc"):
        got = allowed_outcomes_for_graph(g, ax_model_for(model))
        assert got == frozenset({outcome(r0=1, r1=1)}), (model, sorted(got))


def test_count_executions_orders_models_by_strength():
    """The delaying models admit at least as many consistent executions
    as sc, and counting is deterministic."""
    t = TESTS["sb"]
    n_sc = count_executions(t, "sc")
    n_bc = count_executions(t, "bc")
    assert 0 < n_sc <= n_bc
    assert count_executions(t, "bc") == n_bc


def test_value_resolution_chains_increments():
    """lock-inc's increments read-through rf: the final counter is exact
    and each register matches its read's source value."""
    t = TESTS["lock-inc"]
    finals = {dict(ex.outcome)["c!"] for ex in enumerate_executions(
        litmus_event_graph(t), ax_model_for("rc"), finals=t.finals
    )}
    assert finals == {2}


def test_non_delaying_protocols_collapse_to_sc():
    for model in ("bc", "wo", "rc"):
        for proto in ("wbi", "writeupdate"):
            assert (
                allowed_outcomes(TESTS["sb"], model, proto)
                == TESTS["sb"].sc_outcomes
            )
