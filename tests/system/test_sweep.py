"""The parallel sweep runner: digests, cache, dedup, and determinism.

The runner's contract is that parallelism and caching are *invisible*: the
same task list yields the same result list whether points come from one
process, a pool, or the on-disk cache.  These tests pin each piece of that
contract without simulating anything expensive.
"""

import json
import os
import textwrap

import pytest

from repro.sweep import (
    CACHE_VERSION,
    SweepStats,
    SweepTask,
    config_fingerprint,
    default_jobs,
    derive_seed,
    run_sweep,
    task_digest,
)
from repro.system.config import MachineConfig


# ------------------------------------------------------------------ digests


def test_task_digest_stable_under_param_order():
    a = SweepTask("m:f", {"x": 1, "y": [1, 2], "z": "s"})
    b = SweepTask("m:f", {"z": "s", "y": [1, 2], "x": 1})
    assert task_digest(a) == task_digest(b)


def test_task_digest_distinguishes_fn_params_and_version():
    base = SweepTask("m:f", {"x": 1})
    assert task_digest(base) != task_digest(SweepTask("m:g", {"x": 1}))
    assert task_digest(base) != task_digest(SweepTask("m:f", {"x": 2}))
    assert task_digest(base) != task_digest(base, version=CACHE_VERSION + "x")


def test_task_digest_normalizes_tuples_to_lists():
    assert task_digest(SweepTask("m:f", {"v": (1, 2)})) == task_digest(
        SweepTask("m:f", {"v": [1, 2]})
    )


def test_sweep_task_validates_early():
    with pytest.raises(ValueError):
        SweepTask("no_colon_here", {})
    with pytest.raises(TypeError):
        SweepTask("m:f", {"bad": object()})


def test_config_fingerprint_tracks_every_field():
    a = MachineConfig(n_nodes=8, seed=1)
    b = MachineConfig(n_nodes=8, seed=1)
    c = MachineConfig(n_nodes=8, seed=2)
    assert config_fingerprint(a) == config_fingerprint(b)
    assert config_fingerprint(a) != config_fingerprint(c)


def test_derive_seed_deterministic_and_independent():
    s1 = derive_seed(42, "fig", 16, "queue")
    assert s1 == derive_seed(42, "fig", 16, "queue")
    assert 0 <= s1 < 2**31
    others = {derive_seed(42, "fig", n, "queue") for n in (2, 4, 8, 32)}
    assert s1 not in others and len(others) == 4
    assert derive_seed(43, "fig", 16, "queue") != s1


def test_default_jobs_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_JOBS", "3")
    assert default_jobs() == 3
    monkeypatch.setenv("REPRO_SWEEP_JOBS", "0")
    with pytest.raises(ValueError):
        default_jobs()


# ------------------------------------------------------------------ running


@pytest.fixture
def probe_module(tmp_path, monkeypatch):
    """A tiny importable point function that logs every invocation, so the
    tests can count how often a point was actually *computed*."""
    mod = tmp_path / "sweep_probe.py"
    mod.write_text(textwrap.dedent("""
        def point(tag, log):
            with open(log, "a") as f:
                f.write(tag + "\\n")
            return {"tag": tag, "value": len(tag)}
    """))
    monkeypatch.syspath_prepend(str(tmp_path))
    log = tmp_path / "calls.log"
    log.write_text("")
    return log


def _calls(log):
    return log.read_text().splitlines()


def test_results_in_task_order_and_dedup(probe_module, tmp_path):
    log = probe_module
    tasks = [
        SweepTask("sweep_probe:point", {"tag": "a", "log": str(log)}),
        SweepTask("sweep_probe:point", {"tag": "bb", "log": str(log)}),
        SweepTask("sweep_probe:point", {"tag": "a", "log": str(log)}),  # dup
    ]
    stats = SweepStats()
    out = run_sweep(tasks, jobs=1, use_cache=False, stats=stats)
    assert [r["tag"] for r in out] == ["a", "bb", "a"]
    assert stats.total == 3 and stats.computed == 2
    assert sorted(_calls(log)) == ["a", "bb"]  # the duplicate ran once


def test_cache_round_trip(probe_module, tmp_path):
    log = probe_module
    cache = tmp_path / "cache"
    tasks = [
        SweepTask("sweep_probe:point", {"tag": t, "log": str(log)})
        for t in ("x", "y")
    ]
    s1 = SweepStats()
    first = run_sweep(tasks, jobs=1, cache_dir=str(cache), stats=s1)
    assert s1.hits == 0 and s1.computed == 2
    s2 = SweepStats()
    second = run_sweep(tasks, jobs=1, cache_dir=str(cache), stats=s2)
    assert s2.hits == 2 and s2.computed == 0
    assert first == second
    assert _calls(log) == ["x", "y"]  # second pass computed nothing
    # Atomic writes: only final .json files, no torn temporaries.
    names = os.listdir(cache)
    assert names and all(n.endswith(".json") for n in names)


def test_stale_cache_version_is_ignored(probe_module, tmp_path):
    log = probe_module
    cache = tmp_path / "cache"
    task = SweepTask("sweep_probe:point", {"tag": "v", "log": str(log)})
    run_sweep([task], jobs=1, cache_dir=str(cache))
    # Corrupt the version in place: the entry must read as a miss.
    (path,) = [cache / n for n in os.listdir(cache)]
    doc = json.loads(path.read_text())
    doc["version"] = "pr0.0"
    path.write_text(json.dumps(doc))
    stats = SweepStats()
    run_sweep([task], jobs=1, cache_dir=str(cache), stats=stats)
    assert stats.hits == 0 and stats.computed == 1
    assert _calls(log) == ["v", "v"]


def test_corrupt_cache_file_is_a_miss(probe_module, tmp_path):
    log = probe_module
    cache = tmp_path / "cache"
    task = SweepTask("sweep_probe:point", {"tag": "c", "log": str(log)})
    run_sweep([task], jobs=1, cache_dir=str(cache))
    (path,) = [cache / n for n in os.listdir(cache)]
    path.write_text("{ not json")
    out = run_sweep([task], jobs=1, cache_dir=str(cache))
    assert out == [{"tag": "c", "value": 1}]


def test_pool_and_inline_agree(probe_module, tmp_path):
    """jobs=N must yield exactly what jobs=1 yields, in the same order —
    worker scheduling is invisible in the result list."""
    log = probe_module
    tasks = [
        SweepTask("sweep_probe:point", {"tag": f"t{i}", "log": str(log)})
        for i in range(6)
    ]
    inline = run_sweep(tasks, jobs=1, use_cache=False)
    pooled = run_sweep(tasks, jobs=2, use_cache=False)
    assert inline == pooled


def test_unresolvable_point_function_raises():
    with pytest.raises(ImportError):
        run_sweep([SweepTask("repro.sweep:no_such_point", {})], jobs=1, use_cache=False)
