"""Unit tests for MachineConfig, Machine wiring, and RunMetrics."""

import pytest

from repro import Machine, MachineConfig, RunMetrics
from repro.network import BusNetwork, CrossbarNetwork, MeshNetwork, OmegaNetwork


# ----------------------------------------------------------------- config


def test_defaults_match_table4():
    cfg = MachineConfig()
    assert cfg.words_per_block == 4
    assert cfg.cache_blocks == 1024
    assert cfg.memory_cycle == 4
    assert cfg.network == "omega"
    assert cfg.write_buffer_capacity is None  # infinite, as the paper assumes
    assert cfg.buffer_capacity is None


def test_n_nodes_must_be_power_of_two():
    with pytest.raises(ValueError):
        MachineConfig(n_nodes=6)
    with pytest.raises(ValueError):
        MachineConfig(n_nodes=0)


def test_cache_geometry_validated():
    with pytest.raises(ValueError):
        MachineConfig(cache_blocks=10, cache_assoc=4)  # not divisible
    with pytest.raises(ValueError):
        MachineConfig(cache_blocks=12, cache_assoc=2)  # sets not power of 2


def test_timing_validated():
    with pytest.raises(ValueError):
        MachineConfig(memory_cycle=0)
    with pytest.raises(ValueError):
        MachineConfig(switch_cycle=-1)


def test_network_name_validated():
    with pytest.raises(ValueError):
        MachineConfig(network="hypercube")


def test_ru_propagation_validated():
    with pytest.raises(ValueError):
        MachineConfig(ru_propagation="telepathy")


def test_cache_sets_property():
    assert MachineConfig(cache_blocks=1024, cache_assoc=4).cache_sets == 256


# ----------------------------------------------------------------- machine


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError, match="protocol"):
        Machine(MachineConfig(n_nodes=2), protocol="mesi")


@pytest.mark.parametrize(
    "name,cls",
    [("omega", OmegaNetwork), ("bus", BusNetwork), ("crossbar", CrossbarNetwork), ("mesh", MeshNetwork)],
)
def test_network_selection(name, cls):
    m = Machine(MachineConfig(n_nodes=4, network=name), protocol="wbi")
    assert isinstance(m.net, cls)


def test_write_buffer_only_on_primitives():
    assert Machine(MachineConfig(n_nodes=2), protocol="wbi").nodes[0].write_buffer is None
    assert (
        Machine(MachineConfig(n_nodes=2), protocol="primitives").nodes[0].write_buffer
        is not None
    )


def test_alloc_block_sequential_and_distinct():
    m = Machine(MachineConfig(n_nodes=4), protocol="wbi")
    a = m.alloc_block(3)
    b = m.alloc_block()
    assert b == a + 3
    with pytest.raises(ValueError):
        m.alloc_block(0)


def test_alloc_word_gets_own_block():
    m = Machine(MachineConfig(n_nodes=4), protocol="wbi")
    w1, w2 = m.alloc_word(), m.alloc_word()
    assert m.amap.block_of(w1) != m.amap.block_of(w2)


def test_poke_peek_roundtrip():
    m = Machine(MachineConfig(n_nodes=4), protocol="wbi")
    addr = m.alloc_word()
    m.poke(addr, 12345)
    assert m.peek_memory(addr) == 12345


def test_run_all_raises_on_deadlock():
    m = Machine(MachineConfig(n_nodes=2), protocol="wbi")

    def stuck(p):
        yield p.sim.event()  # never fires

    m.spawn(stuck(m.processor(0)))
    with pytest.raises(RuntimeError, match="still running"):
        m.run_all(max_cycles=100)


def test_metrics_aggregation():
    m = Machine(MachineConfig(n_nodes=4), protocol="wbi")
    addr = m.alloc_word()

    def w(p):
        yield from p.write(addr, p.node_id)

    for i in range(4):
        m.spawn(w(m.processor(i)))
    m.run()
    met = m.metrics()
    assert isinstance(met, RunMetrics)
    assert met.completion_time == m.sim.now
    assert met.messages == m.net.message_count
    assert sum(met.msg_by_type.values()) == met.messages
    assert met.node_counters.get("wbi.write_misses", 0) >= 1
    assert met.messages_of("DATA") >= 1


def test_every_node_attached_and_dispatching():
    m = Machine(MachineConfig(n_nodes=8), protocol="primitives")
    for node in m.nodes:
        assert node.data_ctl is not None
        assert node.cbl is not None
        assert node.barrier_engine is not None
        assert node.sem_engine is not None


def test_node_rejects_duplicate_message_registration():
    from repro.coherence.wbi import WBICacheController

    m = Machine(MachineConfig(n_nodes=2), protocol="wbi")
    with pytest.raises(ValueError, match="already handled"):
        m.nodes[0].register(WBICacheController(m.nodes[0]))


def test_determinism_across_identical_machines():
    def run():
        m = Machine(MachineConfig(n_nodes=4, seed=9), protocol="primitives")
        from repro import CBLLock

        lock = CBLLock(m)

        def w(p):
            for _ in range(3):
                yield from p.acquire(lock)
                yield from p.compute(10)
                yield from p.release(lock)

        for i in range(4):
            m.spawn(w(m.processor(i)))
        m.run()
        return m.sim.now, m.net.message_count

    assert run() == run()
