"""RunMetrics JSON round-trip: the metrics document CI artifacts store."""

import json

import pytest

from repro import Machine, MachineConfig, RunMetrics
from repro.faults.plan import FaultSpec


def test_roundtrip_preserves_every_field():
    m = RunMetrics(
        completion_time=123.5,
        messages=42,
        flits=99,
        mean_net_latency=6.25,
        msg_by_type={"LOCK_GRANT": 8, "DATA_BLOCK": 34},
        node_counters={"compute_cycles": 1000},
        retries=3,
        timeouts=5,
        timeout_cycles=1500,
        faults={"fault.drops": 2},
    )
    doc = json.loads(json.dumps(m.to_json()))
    assert RunMetrics.from_json(doc) == m


def test_roundtrip_copies_dict_fields():
    m = RunMetrics(msg_by_type={"A": 1})
    doc = m.to_json()
    doc["msg_by_type"]["A"] = 99
    assert m.msg_by_type["A"] == 1  # to_json copied
    back = RunMetrics.from_json(doc)
    doc["msg_by_type"]["A"] = 7
    assert back.msg_by_type["A"] == 99  # from_json copied


def test_missing_keys_fall_back_to_defaults():
    back = RunMetrics.from_json({"completion_time": 10.0})
    assert back.completion_time == 10.0
    assert back.messages == 0
    assert back.faults == {}


def test_unknown_keys_are_rejected():
    with pytest.raises(ValueError, match="unknown RunMetrics fields"):
        RunMetrics.from_json({"completion_time": 1.0, "typo_field": 2})


def test_drop_log_tail_roundtrips():
    """The drop-log tail (PR 7) rides the document and survives the trip."""
    m = RunMetrics(
        faults={"fault.targeted_drops": 1},
        drop_log_tail=["t=36 targeted drop #0 INV 0->1 addr=0"],
    )
    doc = json.loads(json.dumps(m.to_json()))
    assert doc["drop_log_tail"] == ["t=36 targeted drop #0 INV 0->1 addr=0"]
    back = RunMetrics.from_json(doc)
    assert back == m
    # from_json copies: mutating the document must not reach the object.
    doc["drop_log_tail"].append("tampered")
    assert back.drop_log_tail == ["t=36 targeted drop #0 INV 0->1 addr=0"]


def test_targeted_drop_run_populates_tail():
    cfg = MachineConfig(n_nodes=4, cache_blocks=64, cache_assoc=2, seed=5)
    spec = FaultSpec(targeted=(("INV", 0, 1),))
    machine = Machine(cfg, protocol="wbi", faults=spec)
    word = machine.alloc_word()

    def reader(proc):
        yield from proc.shared_read(word)
        yield from proc.compute(50)

    def writer(proc):
        yield from proc.compute(30)
        yield from proc.shared_write(word, 7)

    machine.spawn(reader(machine.processor(1)), name="r")
    machine.spawn(writer(machine.processor(2)), name="w")
    machine.run_all()
    m = machine.metrics()
    assert any("targeted drop" in line for line in m.drop_log_tail)
    back = RunMetrics.from_json(json.loads(json.dumps(m.to_json())))
    assert back.drop_log_tail == m.drop_log_tail


def test_faulty_run_metrics_roundtrip():
    """Retry/timeout/fault tallies survive the trip (the PR 2 fields)."""
    cfg = MachineConfig(n_nodes=4, cache_blocks=64, cache_assoc=2, seed=7)
    spec = FaultSpec(drop_prob=0.05, dup_prob=0.02, seed=11)
    machine = Machine(cfg, protocol="wbi", faults=spec)
    counter = machine.alloc_word()

    def worker(proc):
        for _ in range(3):
            yield from proc.rmw(counter, "fetch_add", 1)
            yield from proc.compute(20)

    for i in range(4):
        machine.spawn(worker(machine.processor(i)), name=f"w{i}")
    machine.run_all()
    m = machine.metrics()
    assert sum(m.faults.values()) > 0  # the lossy fabric actually lost things
    back = RunMetrics.from_json(json.loads(json.dumps(m.to_json())))
    assert back == m


# ---------------------------------------------------------------------------
# Latency histogram (PR 8): tail-latency fields ride the same document.
# ---------------------------------------------------------------------------

from repro.system.metrics import LatencyHistogram  # noqa: E402


def _sample_hist():
    h = LatencyHistogram()
    h.record_many([1.0, 2.0, 5.0, 40.0, 900.0, 900.0, 12345.0])
    h.record(3.5)
    h.note_backlog(17)
    h.note_backlog(5)  # peak keeps the max
    h.note_saturated()
    return h


def test_latency_histogram_roundtrip():
    h = _sample_hist()
    back = LatencyHistogram.from_json(json.loads(json.dumps(h.to_json())))
    assert back == h
    assert back.quantiles() == h.quantiles()
    assert back.backlog_peak == 17 and back.saturated == 1


def test_latency_histogram_tolerates_unknown_keys():
    """Histogram docs live in long-lived caches: a newer writer's extra
    counter must not make archived documents unreadable (deliberately the
    opposite posture from RunMetrics.from_json)."""
    doc = _sample_hist().to_json()
    doc["p50_hint"] = 2.0  # a field this reader has never heard of
    back = LatencyHistogram.from_json(doc)
    assert back == _sample_hist()


def test_run_metrics_latency_roundtrip():
    m = RunMetrics(completion_time=50.0, messages=9, latency=_sample_hist())
    doc = json.loads(json.dumps(m.to_json()))
    assert doc["latency"]["total"] == 8
    back = RunMetrics.from_json(doc)
    assert back == m
    assert back.latency is not None
    assert back.latency.quantiles() == m.latency.quantiles()


def test_run_metrics_latency_defaults_to_none():
    """Runs that never recorded a latency carry None, and old documents
    without the key still load."""
    m = RunMetrics(completion_time=1.0)
    assert json.loads(json.dumps(m.to_json()))["latency"] is None
    assert RunMetrics.from_json({"completion_time": 1.0}).latency is None
    assert RunMetrics.from_json(m.to_json()).latency is None


def test_machine_run_populates_per_phase_latency():
    """record_latencies lands in RunMetrics.latency and in the phase stats
    as per-phase deltas."""
    cfg = MachineConfig(n_nodes=2, cache_blocks=64, cache_assoc=2, seed=3)
    machine = Machine(cfg, protocol="wbi")

    def driver(proc):
        machine.mark_phase("warm")
        yield from proc.compute(10)
        machine.record_latencies([2.0, 4.0])
        machine.mark_phase("serve")
        yield from proc.compute(10)
        machine.record_latency(8.0)

    machine.spawn(driver(machine.processor(0)), name="d")
    machine.run_all()
    m = machine.metrics()
    assert m.latency is not None and m.latency.total == 3
    pm = machine.phase_metrics()
    phases = {p.name: p for p in pm.phases}
    assert phases["warm"].latency.total == 2
    assert phases["serve"].latency.total == 1
    back = RunMetrics.from_json(json.loads(json.dumps(m.to_json())))
    assert back.latency == m.latency
