"""Unit tests for the Processor API surface."""

import pytest

from repro import Machine, MachineConfig


def test_primitives_rejected_on_wbi_machine():
    m = Machine(MachineConfig(n_nodes=2, cache_blocks=64, cache_assoc=2), protocol="wbi")
    p = m.processor(0)

    def w():
        yield from p.read_update(0)

    m.spawn(w())
    with pytest.raises(RuntimeError, match="READ-UPDATE is a Table 1 primitive"):
        m.run()


def test_flush_rejected_on_writeupdate_machine():
    m = Machine(
        MachineConfig(n_nodes=2, cache_blocks=64, cache_assoc=2), protocol="writeupdate"
    )
    p = m.processor(0)

    def w():
        yield from p.flush()

    m.spawn(w())
    with pytest.raises(RuntimeError, match="FLUSH-BUFFER"):
        m.run()


def test_processor_counters_track_operations():
    m = Machine(
        MachineConfig(n_nodes=2, cache_blocks=64, cache_assoc=2), protocol="primitives"
    )
    p = m.processor(0, consistency="bc")
    addr = m.alloc_word()

    def w():
        yield from p.read(addr)
        yield from p.write(addr, 1)
        yield from p.shared_read(addr)
        yield from p.shared_write(addr, 2)
        yield from p.flush()

    m.spawn(w())
    m.run()
    c = p.stats.counters
    assert c["reads"] == 1
    assert c["writes"] == 1
    assert c["shared_reads"] == 1
    assert c["shared_writes"] == 1


def test_consistency_instance_accepted():
    from repro.consistency import BufferedConsistency

    m = Machine(
        MachineConfig(n_nodes=2, cache_blocks=64, cache_assoc=2), protocol="primitives"
    )
    p = m.processor(0, consistency=BufferedConsistency())
    assert p.model.name == "bc"


def test_processor_binds_correct_node():
    m = Machine(MachineConfig(n_nodes=4, cache_blocks=64, cache_assoc=2), protocol="wbi")
    p = m.processor(3)
    assert p.node is m.nodes[3]
    assert p.node_id == 3


def test_experiments_quick_report_smoke():
    """The one-shot report generator produces the expected sections."""
    import io

    from repro.experiments import run_report

    buf = io.StringIO()
    run_report(buf, quick=True)
    text = buf.getvalue()
    for section in ("Table 2", "Table 3", "Figure 4", "Figure 5", "Figure 6", "Figure 7"):
        assert section in text
    assert "Q-CBL" in text and "BC-CBL" in text
