"""Tests for the compute/data/sync cycle accounting."""

import pytest

from repro import CBLLock, Machine, MachineConfig


def test_breakdown_buckets_populate():
    m = Machine(MachineConfig(n_nodes=4, cache_blocks=64, cache_assoc=2), protocol="primitives")
    lock = CBLLock(m)
    addr = m.alloc_word()
    p = m.processor(0)

    def w():
        yield from p.compute(100)
        yield from p.read(addr)
        yield from p.acquire(lock)
        yield from p.release(lock)

    m.spawn(w())
    m.run()
    b = p.time_breakdown()
    assert b["compute"] == 100
    assert b["data"] > 0  # the read miss cost cycles
    assert b["sync"] > 0  # the acquire/release cost cycles


def test_contention_shows_up_as_sync_time():
    """Under contention the sync bucket dominates; uncontended it is tiny.
    This is the paper's argument for reporting completion time rather than
    processor utilization."""

    def sync_fraction(n_contenders):
        m = Machine(
            MachineConfig(n_nodes=8, cache_blocks=64, cache_assoc=2), protocol="primitives"
        )
        lock = CBLLock(m)

        def w(p):
            yield from p.acquire(lock)
            yield from p.compute(200)
            yield from p.release(lock)

        for i in range(n_contenders):
            m.spawn(w(m.processor(i)))
        m.run()
        b = m.time_breakdown()
        total = sum(b.values())
        return b["sync"] / total if total else 0.0

    assert sync_fraction(8) > sync_fraction(1) * 2


def test_machine_breakdown_sums_processors():
    m = Machine(MachineConfig(n_nodes=2, cache_blocks=64, cache_assoc=2), protocol="wbi")
    addr = m.alloc_word()
    procs = [m.processor(i) for i in range(2)]

    def w(p):
        yield from p.compute(10)
        yield from p.write(addr, 1)

    for p in procs:
        m.spawn(w(p))
    m.run()
    agg = m.time_breakdown()
    assert agg["compute"] == 20
    assert agg["data"] == sum(p.time_breakdown()["data"] for p in procs)


def test_metrics_include_cycle_buckets():
    m = Machine(MachineConfig(n_nodes=2, cache_blocks=64, cache_assoc=2), protocol="wbi")
    p = m.processor(0)

    def w():
        yield from p.compute(5)

    m.spawn(w())
    m.run()
    met = m.metrics()
    assert met.node_counters["compute_cycles"] == 5
