"""Exporter tests: a real traced run must produce Perfetto-loadable JSON.

The Chrome Trace Event Format contract is validated structurally (required
keys per phase letter, flow-arrow pairing, metadata rows) — the acceptance
gate for ``python -m repro.obs.export --chrome``.
"""

import json

import pytest

from repro import CBLLock, Machine, MachineConfig, ObsParams
from repro.obs.export import main, read_trace, to_chrome, to_csv_rows, to_metrics

#: pid assignments the exporter promises (one Chrome "process" per layer).
_KNOWN_CATS = {"kernel", "phase", "net", "coh", "sync", "wb", "resilience"}


def traced_run(obs=None):
    cfg = MachineConfig(n_nodes=4, seed=3, obs=obs or ObsParams())
    machine = Machine(cfg, protocol="primitives")
    lock = CBLLock(machine)

    def worker(proc):
        for _ in range(2):
            yield from proc.acquire(lock)
            value = yield from lock.read_data(proc, 0)
            yield from lock.write_data(proc, 0, value + 1)
            yield from proc.release(lock)

    for i in range(4):
        machine.spawn(worker(machine.processor(i, consistency="bc")), name=f"w{i}")
    machine.run_all()
    return machine


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    machine = traced_run()
    path = tmp_path_factory.mktemp("trace") / "run.trace"
    n = machine.dump_trace(str(path))
    assert n > 0
    return str(path)


def test_read_trace_returns_meta_and_events(trace_file):
    meta, events = read_trace(trace_file)
    assert meta["kind"] == "meta"
    assert meta["events"] == len(events) > 0
    assert meta["dropped"] == 0
    assert all("ts" in e and "ph" in e and "name" in e for e in events)


def test_chrome_doc_is_schema_valid(trace_file):
    meta, events = read_trace(trace_file)
    doc = to_chrome(events, meta)
    json.dumps(doc)  # must be JSON-serializable as-is
    assert set(doc) >= {"traceEvents", "displayTimeUnit", "otherData"}
    assert doc["otherData"]["dropped"] == 0
    rows = doc["traceEvents"]
    assert rows
    for row in rows:
        assert {"name", "ph", "pid", "tid"} <= set(row)
        if row["ph"] == "X":
            assert "dur" in row and "ts" in row
        elif row["ph"] == "i":
            assert row["s"] == "t"
        elif row["ph"] in ("s", "f"):
            assert row["name"] == "cause" and "id" in row
        elif row["ph"] == "M":
            assert row["name"] == "process_name"
            assert row["args"]["name"] in _KNOWN_CATS
    # Every layer that emitted gets a process_name metadata row.
    assert any(r["ph"] == "M" for r in rows)


def test_chrome_flow_arrows_pair_up(trace_file):
    meta, events = read_trace(trace_file)
    rows = to_chrome(events, meta)["traceEvents"]
    starts = [r["id"] for r in rows if r["ph"] == "s"]
    finishes = [r["id"] for r in rows if r["ph"] == "f"]
    assert starts, "traced CBL run should produce causal parent links"
    assert sorted(starts) == sorted(finishes)
    assert len(set(starts)) == len(starts)


def test_csv_rollup_aggregates_spans(trace_file):
    _, events = read_trace(trace_file)
    rows = to_csv_rows(events)
    assert rows
    by_key = {(r["cat"], r["name"]): r for r in rows}
    assert sum(r["count"] for r in rows) == len(events)
    for r in rows:
        if r["spans"]:
            assert r["mean_dur"] == pytest.approx(r["total_dur"] / r["spans"])
        else:
            assert r["mean_dur"] == 0.0
    # Sync spans from the lock workload must be present.
    assert any(cat == "sync" and name.startswith("acquire:") for cat, name in by_key)


def test_metrics_doc(trace_file):
    meta, events = read_trace(trace_file)
    doc = to_metrics(events, meta)
    assert doc["trace_events"] == len(events)
    assert doc["completion_time"] == meta["now"]
    assert doc["by_name"]


def test_cli_chrome_csv_metrics(trace_file, tmp_path, capsys):
    chrome_out = tmp_path / "t.json"
    assert main([trace_file, "--chrome", "--out", str(chrome_out)]) == 0
    assert json.loads(chrome_out.read_text())["traceEvents"]

    csv_out = tmp_path / "t.csv"
    assert main([trace_file, "--csv", "--out", str(csv_out)]) == 0
    header = csv_out.read_text().splitlines()[0]
    assert header == "cat,name,count,spans,total_dur,mean_dur"

    metrics_out = tmp_path / "t.metrics.json"
    assert main([trace_file, "--metrics", "--out", str(metrics_out)]) == 0
    assert "by_name" in json.loads(metrics_out.read_text())
    capsys.readouterr()


def test_cli_default_output_path(trace_file, capsys):
    assert main([trace_file]) == 0
    out = capsys.readouterr().out
    assert trace_file + ".json" in out
    assert json.loads(open(trace_file + ".json").read())["traceEvents"]


def test_cli_input_errors(tmp_path, capsys):
    assert main([str(tmp_path / "missing.trace")]) == 2
    bad = tmp_path / "bad.trace"
    bad.write_text('{"kind": "meta"}\nnot json\n')
    assert main([str(bad)]) == 2
    err = capsys.readouterr().err
    assert "bad JSON line" in err


def test_max_events_cap_recorded_in_meta(tmp_path):
    machine = traced_run(obs=ObsParams(max_events=10, tail_events=4))
    path = tmp_path / "capped.trace"
    machine.dump_trace(str(path))
    meta, events = read_trace(str(path))
    assert len(events) == 10
    assert meta["dropped"] > 0
    assert len(machine.obs.tail_events()) == 4
