"""Unit tests for the trace bus: event shapes, gating, caps, dumping."""

import io
import json

import pytest

from repro.obs import ObsParams, TraceBus, TraceEvent


class FakeSim:
    """Just enough simulator for the bus: a readable clock."""

    def __init__(self):
        self.now = 0.0


def make_bus(**kw):
    sim = FakeSim()
    return sim, TraceBus(sim, ObsParams(**kw))


def test_obsparams_validation():
    with pytest.raises(ValueError):
        ObsParams(max_events=0)
    with pytest.raises(ValueError):
        ObsParams(tail_events=0)
    p = ObsParams(categories=["net", "coh"])
    assert p.categories == frozenset({"net", "coh"})


def test_instant_event_shape():
    sim, bus = make_bus()
    sim.now = 7.5
    bus.instant("send:DATA", "net", tid=3, args={"dst": 1}, id=42, parent=41)
    (ev,) = bus.events
    d = ev.to_dict()
    assert d == {
        "ts": 7.5, "ph": "i", "name": "send:DATA", "cat": "net",
        "tid": 3, "id": 42, "parent": 41, "args": {"dst": 1},
    }


def test_span_duration_and_sparse_dict():
    sim, bus = make_bus()
    sim.now = 30.0
    bus.span("miss:read", "coh", 2, t0=10.0)
    (ev,) = bus.events
    assert ev.ts == 10.0 and ev.dur == 20.0
    d = ev.to_dict()
    assert d["ph"] == "X" and d["dur"] == 20.0
    # Unset id/parent/args never appear in the serialized form.
    assert "id" not in d and "parent" not in d and "args" not in d


def test_counter_event():
    sim, bus = make_bus()
    sim.now = 4.0
    bus.counter("wb.occupancy", "wb", 1, {"pending": 3})
    (ev,) = bus.events
    d = ev.to_dict()
    assert d["ph"] == "C" and d["args"] == {"pending": 3}


def test_category_gating():
    sim, bus = make_bus(categories=frozenset({"net"}))
    assert bus.enabled_for("net")
    assert not bus.enabled_for("coh")
    bus.instant("a", "net")
    bus.instant("b", "coh")
    bus.span("c", "sync", 0, t0=0.0)
    bus.counter("d", "wb", 0, {"x": 1})
    assert [e.name for e in bus.events] == ["a"]


def test_max_events_cap_feeds_tail_and_dropped():
    sim, bus = make_bus(max_events=3, tail_events=2)
    for i in range(5):
        sim.now = float(i)
        bus.instant(f"e{i}", "net")
    assert [e.name for e in bus.events] == ["e0", "e1", "e2"]
    assert bus.dropped == 2
    # The tail keeps the most recent events even past the cap.
    assert [e["name"] for e in bus.tail_events()] == ["e3", "e4"]


def test_dump_jsonl_meta_and_roundtrip(tmp_path):
    sim, bus = make_bus()
    bus.instant("x", "net", tid=1)
    sim.now = 5.0
    bus.span("y", "coh", 2, t0=1.0)
    path = tmp_path / "run.trace"
    n = bus.dump_jsonl(str(path))
    assert n == 2
    lines = path.read_text().splitlines()
    meta = json.loads(lines[0])
    assert meta == {"kind": "meta", "events": 2, "dropped": 0, "now": 5.0}
    events = [json.loads(line) for line in lines[1:]]
    assert [e["name"] for e in events] == ["x", "y"]


def test_dump_jsonl_accepts_open_file():
    sim, bus = make_bus()
    bus.instant("x", "net")
    buf = io.StringIO()
    assert bus.dump_jsonl(buf) == 1
    lines = buf.getvalue().splitlines()
    assert json.loads(lines[0])["kind"] == "meta"
    assert json.loads(lines[1])["name"] == "x"


def test_trace_event_repr_mentions_phase_and_name():
    ev = TraceEvent(1.0, "X", "miss", "coh", dur=3.0)
    assert "miss" in repr(ev) and "dur=3.0" in repr(ev)
