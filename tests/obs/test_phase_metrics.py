"""Phase accounting: rollups must tile the run and sum to the legacy totals.

Phase metrics are always on (no ``ObsParams`` needed), and
``Machine.metrics()`` is pinned as a view over ``phase_metrics().totals``.
"""

import json

import pytest

from repro import CBLLock, HWBarrier, Machine, MachineConfig, ObsParams, PhaseMetrics
from repro.obs.metrics import PhaseStat
from repro.workloads.fft import FFTParams, FFTWorkload


def run_machine(obs=None, mark_phases=False, seed=3):
    cfg = MachineConfig(n_nodes=4, seed=seed, obs=obs)
    machine = Machine(cfg, protocol="primitives")
    lock = CBLLock(machine)
    bar = HWBarrier(machine, n=4)

    def worker(proc):
        if mark_phases:
            machine.mark_phase("increment")
        for _ in range(2):
            yield from proc.acquire(lock)
            value = yield from lock.read_data(proc, 0)
            yield from lock.write_data(proc, 0, value + 1)
            yield from proc.release(lock)
        if mark_phases:
            machine.mark_phase("meet")
        yield from proc.barrier(bar)

    for i in range(4):
        machine.spawn(worker(machine.processor(i, consistency="bc")), name=f"w{i}")
    machine.run_all()
    return machine


def test_implicit_run_phase_when_never_marked():
    machine = run_machine()
    pm = machine.phase_metrics()
    pm.check_consistency()
    assert [p.name for p in pm.phases] == ["run"]
    assert pm.unattributed_cycles == 0.0
    (phase,) = pm.phases
    assert phase.t0 == 0.0
    assert phase.t1 == pm.totals.completion_time
    assert phase.messages == pm.totals.messages


def test_marked_phases_tile_the_run():
    machine = run_machine(mark_phases=True)
    pm = machine.phase_metrics()
    pm.check_consistency()
    names = [p.name for p in pm.phases]
    # mark_phase is idempotent on the open phase, so four workers
    # announcing the same phases yield exactly one of each.
    assert names == ["increment", "meet"]
    assert pm.unattributed_cycles == pm.phases[0].t0


def test_phase_rollups_sum_to_totals():
    machine = run_machine(mark_phases=True)
    pm = machine.phase_metrics()
    totals = pm.totals
    assert sum(p.messages for p in pm.phases) == totals.messages
    assert sum(p.flits for p in pm.phases) == totals.flits
    summed_by_type = {}
    summed_counters = {}
    for p in pm.phases:
        for k, v in p.msg_by_type.items():
            summed_by_type[k] = summed_by_type.get(k, 0) + v
        for k, v in p.node_counters.items():
            summed_counters[k] = summed_counters.get(k, 0) + v
    assert summed_by_type == {k: v for k, v in totals.msg_by_type.items() if v}
    assert summed_counters == {k: v for k, v in totals.node_counters.items() if v}


def test_metrics_is_a_view_over_phase_metrics():
    machine = run_machine(mark_phases=True)
    assert machine.metrics() == machine.phase_metrics().totals


def test_phase_metrics_nondestructive():
    machine = run_machine(mark_phases=True)
    first = machine.phase_metrics()
    second = machine.phase_metrics()
    assert [p.to_json() for p in first.phases] == [p.to_json() for p in second.phases]
    assert first.totals == second.totals


def test_tracing_does_not_perturb_simulated_time():
    plain = run_machine(seed=7).metrics()
    traced = run_machine(obs=ObsParams(), seed=7).metrics()
    assert traced.completion_time == plain.completion_time
    assert traced.messages == plain.messages
    assert traced.msg_by_type == plain.msg_by_type


def test_fft_workload_marks_butterfly_phases():
    cfg = MachineConfig(n_nodes=4, seed=1)
    machine = Machine(cfg, protocol="primitives")
    FFTWorkload(machine, FFTParams()).run()
    pm = machine.phase_metrics()
    pm.check_consistency()
    assert [p.name for p in pm.phases] == ["butterfly-0", "butterfly-1"]
    assert all(p.messages > 0 for p in pm.phases)


def test_phase_lookup_and_missing_key():
    machine = run_machine(mark_phases=True)
    pm = machine.phase_metrics()
    assert pm.phase("increment").name == "increment"
    with pytest.raises(KeyError):
        pm.phase("no-such-phase")


def test_phase_metrics_json_roundtrip():
    machine = run_machine(mark_phases=True)
    pm = machine.phase_metrics()
    doc = json.loads(json.dumps(pm.to_json()))
    back = PhaseMetrics.from_json(doc)
    assert back.totals == pm.totals
    assert [p.to_json() for p in back.phases] == [p.to_json() for p in pm.phases]
    assert back.unattributed_cycles == pm.unattributed_cycles
    back.check_consistency()


def test_check_consistency_rejects_bad_tiling():
    pm = PhaseMetrics(phases=[PhaseStat("a", 0.0, 5.0)])
    pm.totals.completion_time = 9.0
    with pytest.raises(ValueError):
        pm.check_consistency()
    pm2 = PhaseMetrics(
        phases=[PhaseStat("a", 0.0, 5.0), PhaseStat("b", 6.0, 9.0)]
    )
    pm2.totals.completion_time = 9.0
    pm2.unattributed_cycles = 1.0
    with pytest.raises(ValueError):
        pm2.check_consistency()


def test_phase_trace_events_emitted_when_bus_on():
    machine = run_machine(obs=ObsParams(), mark_phases=True)
    names = {e.name for e in machine.obs.events if e.cat == "phase"}
    assert names == {"phase:increment", "phase:meet"}
