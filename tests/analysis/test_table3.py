"""Tests for the Table 3 analytical model."""

import pytest

from repro.analysis import (
    ScenarioCost,
    TimeParams,
    contention_advantage,
    table3,
    table3_entry,
)

T = TimeParams(t_nw=10, t_cs=50, t_d=1, t_m=4)


def test_serial_lock_formulas():
    wbi = table3_entry("wbi", "serial_lock", 1, T)
    cbl = table3_entry("cbl", "serial_lock", 1, T)
    assert wbi.messages == 8
    assert wbi.time == 8 * 10 + 5 * 1 + 4 + 50
    assert cbl.messages == 3
    assert cbl.time == 3 * 10 + 1 + 50


def test_parallel_lock_formulas():
    n = 16
    wbi = table3_entry("wbi", "parallel_lock", n, T)
    cbl = table3_entry("cbl", "parallel_lock", n, T)
    assert wbi.messages == 6 * n * n + 4 * n
    assert cbl.messages == 6 * n - 3
    assert wbi.time == n * 50 + 10 * n * 10 + n * (n + 1) / 2 * 4 + 5 * n * (5 * n - 1) / 2 * 1
    assert cbl.time == n * 50 + (2 * n + 1) * 10 + (n + 1) * 1 + 4


def test_barrier_formulas():
    n = 8
    assert table3_entry("wbi", "barrier_request", n, T).messages == 18
    assert table3_entry("cbl", "barrier_request", n, T).messages == 2
    assert table3_entry("cbl", "barrier_request", n, T).time == 2 * (10 + 4)
    assert table3_entry("wbi", "barrier_notify", n, T).messages == 5 * n - 3
    assert table3_entry("cbl", "barrier_notify", n, T).messages == n
    assert table3_entry("cbl", "barrier_notify", n, T).time == 2 * 10 + (n - 1) * 1


def test_cbl_is_linear_wbi_quadratic_in_messages():
    m8 = table3_entry("wbi", "parallel_lock", 8, T).messages
    m64 = table3_entry("wbi", "parallel_lock", 64, T).messages
    assert m64 / m8 > 40  # ~quadratic
    c8 = table3_entry("cbl", "parallel_lock", 8, T).messages
    c64 = table3_entry("cbl", "parallel_lock", 64, T).messages
    assert c64 / c8 < 10  # linear


def test_contention_advantage_grows_with_n():
    a8 = contention_advantage(8, T)
    a64 = contention_advantage(64, T)
    assert a64 > a8 > 1


def test_cbl_beats_wbi_everywhere():
    for n in (2, 8, 32):
        t = table3(n, T)
        for scenario, d in t.items():
            assert d["cbl"].messages <= d["wbi"].messages, scenario
            assert d["cbl"].time <= d["wbi"].time, scenario


def test_full_table_shape():
    t = table3(4, T)
    assert set(t) == {"parallel_lock", "serial_lock", "barrier_request", "barrier_notify"}
    for d in t.values():
        assert set(d) == {"wbi", "cbl"}
        for c in d.values():
            assert isinstance(c, ScenarioCost)


def test_validation():
    with pytest.raises(ValueError):
        table3_entry("wbi", "parallel_lock", 0, T)
    with pytest.raises(ValueError):
        table3_entry("bogus", "serial_lock", 4, T)
    with pytest.raises(ValueError):
        table3_entry("wbi", "bogus", 4, T)
    with pytest.raises(ValueError):
        TimeParams(t_nw=-1)
