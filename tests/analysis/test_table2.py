"""Tests for the Table 2 analytical model."""

import pytest

from repro.analysis import (
    OpCost,
    TransactionCosts,
    steady_state_latency,
    steady_state_traffic,
    table2,
    table2_row,
)


C = TransactionCosts(c_b=5, c_w=2, c_i=1, c_r=1)


def test_initial_load_matches_paper():
    n, b = 16, 4
    t = table2(n, b, C)
    assert t["read-update"]["initial_load"].traffic == 4 * 5  # ceil(16/4) C_B
    assert t["inv-I"]["initial_load"].traffic == 4 * 5
    assert t["inv-II"]["initial_load"].traffic == 16 * 5  # n C_B


def test_read_update_write_cost():
    n, b = 16, 4
    row = table2_row("read-update", n, b, C)
    assert row["write"].traffic == 2 + 15 * 5  # C_W + (n-1) C_B
    assert row["write"].latency == 2 + 5  # parallel group counted once


def test_read_update_read_free():
    row = table2_row("read-update", 16, 4, C)
    assert row["read"].traffic == 0
    assert row["read"].latency == 0


def test_inv_ii_write_cost():
    n = 8
    row = table2_row("inv-II", n, 4, C)
    assert row["write"].traffic == 1 + 7 * 1  # C_R + (n-1) C_I
    assert row["read"].traffic == 7 * 5  # (n-1) C_B


def test_inv_i_write_cost_formula():
    n, b = 8, 4
    row = table2_row("inv-I", n, b, C)
    expected = (1 / 4) * (1 + 7 * 1) + (3 / 4) * (2 * 1 + 2 * 5)
    assert row["write"].traffic == pytest.approx(expected)


def test_inv_i_read_cost_formula():
    n, b = 16, 4
    row = table2_row("inv-I", n, b, C)
    nb = 4
    expected = (1 / 4) * (nb - 1) * 5 + (3 / 4) * nb * 5
    assert row["read"].traffic == pytest.approx(expected)


def test_read_update_wins_on_latency_for_all_n():
    """The paper's claim: per-iteration critical-path cost favors read-update."""
    for n in (4, 8, 16, 32, 64):
        ru = steady_state_latency("read-update", n, 4, C)
        i1 = steady_state_latency("inv-I", n, 4, C)
        i2 = steady_state_latency("inv-II", n, 4, C)
        assert ru < i1, n
        assert ru < i2, n


def test_invalidation_read_traffic_grows_with_n():
    r8 = table2_row("inv-II", 8, 4, C)["read"].traffic
    r64 = table2_row("inv-II", 64, 4, C)["read"].traffic
    assert r64 / r8 == pytest.approx(63 / 7)


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError):
        table2_row("mesi", 8, 4, C)


def test_bad_sizes_rejected():
    with pytest.raises(ValueError):
        table2_row("inv-I", 0, 4, C)
    with pytest.raises(ValueError):
        TransactionCosts(c_b=0)


def test_traffic_at_least_latency():
    for scheme in ("read-update", "inv-I", "inv-II"):
        row = table2_row(scheme, 16, 4, C)
        for op in row.values():
            assert op.traffic >= op.latency
