"""Tests for the queueing cross-check formulas."""

import pytest

from repro.analysis import hotspot_saturation, md1_wait, omega_uncontended_latency


def test_md1_zero_load_zero_wait():
    assert md1_wait(0.0, 5.0) == 0.0


def test_md1_wait_grows_with_load():
    assert md1_wait(0.1, 5.0) < md1_wait(0.15, 5.0)


def test_md1_saturation_infinite():
    assert md1_wait(0.2, 5.0) == float("inf")


def test_md1_known_value():
    # rho = 0.5: W = rho*S / (2*(1-rho)) = 0.5*2/(2*0.5) = 1.0
    assert md1_wait(0.25, 2.0) == pytest.approx(1.0)


def test_md1_validation():
    with pytest.raises(ValueError):
        md1_wait(0.1, 0)
    with pytest.raises(ValueError):
        md1_wait(-0.1, 1)


def test_hotspot_saturation_pfister_norton():
    # h=0: full throughput; h=1, n large: ~1/n.
    assert hotspot_saturation(64, 0.0) == 1.0
    assert hotspot_saturation(64, 1.0) == pytest.approx(1 / 64)
    assert hotspot_saturation(64, 0.1) == pytest.approx(1 / (1 + 0.1 * 63))


def test_hotspot_validation():
    with pytest.raises(ValueError):
        hotspot_saturation(0, 0.5)
    with pytest.raises(ValueError):
        hotspot_saturation(8, 1.5)


def test_omega_latency_matches_simulator_model():
    from repro.network import NetworkParams, OmegaNetwork
    from repro.sim import Simulator

    sim = Simulator()
    net = OmegaNetwork(sim, 16, NetworkParams(switch_cycle=2))
    assert omega_uncontended_latency(16, 5, 2) == net.uncontended_latency(5)


def test_omega_latency_validation():
    with pytest.raises(ValueError):
        omega_uncontended_latency(6, 1)
