"""CLI contracts for both static tools (exit codes, JSON artifacts)."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))
SRC = os.path.join(REPO_ROOT, "src")


def run_cli(*argv, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", *argv],
        cwd=cwd, env=env, capture_output=True, text=True,
    )


# -- the linter --------------------------------------------------------------
def test_lint_clean_tree_exits_zero():
    proc = run_cli("repro.static.lint", "src/repro")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stderr


def test_lint_dirty_file_exits_one(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    proc = run_cli("repro.static.lint", str(bad))
    assert proc.returncode == 1
    assert "[wall-clock]" in proc.stdout


def test_lint_json_report(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("for s in set(a):\n    pass\n")
    out = tmp_path / "report.json"
    proc = run_cli("repro.static.lint", str(bad), "--json", str(out))
    assert proc.returncode == 1
    doc = json.loads(out.read_text())
    assert doc["checked_files"] == 1
    assert doc["counts"]["set-iteration"] == 1
    assert doc["findings"][0]["rule"] == "set-iteration"


def test_lint_usage_errors_exit_two():
    assert run_cli("repro.static.lint", "--rules", "no-such-rule").returncode == 2
    assert run_cli("repro.static.lint", "does/not/exist.py").returncode == 2


def test_lint_list_rules():
    proc = run_cli("repro.static.lint", "--list-rules")
    assert proc.returncode == 0
    for rule in ("unseeded-random", "wall-clock", "set-iteration",
                 "yieldless-process", "ungated-trace"):
        assert rule in proc.stdout


# -- the analyzer ------------------------------------------------------------
def test_drf_corpus_self_check_exits_zero(tmp_path):
    out = tmp_path / "races.json"
    proc = run_cli("repro.static.drf", "--json", str(out))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    doc = json.loads(out.read_text())
    assert doc["mismatches"] == []
    by_name = {row["test"]: row for row in doc["corpus"]}
    assert by_name["mp"]["classification"]["synchronized"] is False
    assert len(by_name["iriw"]["classification"]["races"]) == 4
    assert all(row["flag_matches"] for row in doc["corpus"])


def test_drf_program_file_analysis(tmp_path):
    racy = tmp_path / "racy.py"
    racy.write_text(textwrap.dedent("""
        THREADS = (
            (W("x", 1), W("flag", 1)),
            (R("flag", "r0"), R("x", "r1")),
        )
    """))
    proc = run_cli("repro.static.drf", "--program", str(racy))
    assert proc.returncode == 0
    assert "racy" in proc.stdout and "race on" in proc.stdout

    labeled = tmp_path / "labeled.py"
    labeled.write_text(textwrap.dedent("""
        THREADS = (
            (ACQ("L"), W("x", 1), REL("L")),
            (ACQ("L"), R("x", "r0"), REL("L")),
        )
    """))
    proc = run_cli("repro.static.drf", "--program", str(labeled))
    assert proc.returncode == 0
    assert "properly-labeled" in proc.stdout


def test_drf_program_file_without_threads_exits_two(tmp_path):
    empty = tmp_path / "empty.py"
    empty.write_text("x = 1\n")
    proc = run_cli("repro.static.drf", "--program", str(empty))
    assert proc.returncode == 2
    assert "THREADS" in proc.stderr
