"""Tier-1 wrapper: the simulator's own source must lint clean.

This is the in-suite equivalent of the CI job's
``python -m repro.static.lint src/repro`` — a determinism hazard that
slips into the tree fails the test run, not just the lint job.
"""

import os

from repro.static.lint import iter_python_files, lint_paths

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))
SRC = os.path.join(REPO_ROOT, "src", "repro")


def test_simulator_source_lints_clean():
    found = lint_paths([SRC])
    assert not found, "\n".join(f.format() for f in found)


def test_lint_actually_covered_the_tree():
    # Guard against a silently-empty walk (e.g. a moved source root).
    files = iter_python_files([SRC])
    assert len(files) > 50
    assert any(f.endswith("machine.py") for f in files)
