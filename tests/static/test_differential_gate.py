"""The differential gate: static classification vs dynamic sweeps.

The analyzer's verdict must agree with what the machine can actually do:

* statically **synchronized** ⇒ no relaxed outcome is ever observed under
  the buffered models (BC/WO/RC) — on any protocol;
* statically **racy** ⇒ the relaxed outcomes really are reachable
  (witnessed on pinned seeds where this machine can produce them);
* the fuzzer's derived consume oracle admits every value a pinned corpus
  of generated programs observes across protocols × buffered models.
"""

import numpy as np
import pytest

from repro.static.drf import analyze_program, check_labels
from repro.verify.fuzz import gen_program, run_program
from repro.verify.litmus import LITMUS_TESTS, observe_outcomes
from repro.verify.litmus import tests_for as litmus_tests_for

TESTS = {t.name: t for t in LITMUS_TESTS}
BUFFERED_MODELS = ("bc", "wo", "rc")


# -- synchronized ⇒ SC outcomes only ----------------------------------------
@pytest.mark.parametrize("model", BUFFERED_MODELS)
def test_statically_synchronized_shows_no_relaxed_outcome(model):
    for test in litmus_tests_for("primitives"):
        if not check_labels(test).synchronized:
            continue
        observed = observe_outcomes(
            test, "primitives", model, seeds=range(3), jitters=(0.0, 2.0)
        )
        assert observed <= test.sc_outcomes, (
            f"{test.name} is statically synchronized but {model} produced "
            f"{sorted(observed - test.sc_outcomes)}"
        )


# -- relaxable ⇒ relaxed outcomes reachable ----------------------------------
@pytest.mark.parametrize(
    "name,seeds",
    [
        ("mp", (27, 79, 103, 111)),
        ("sb", (27, 28, 51)),
        ("s", (27, 79, 103, 111)),
        ("r", (8, 27, 64, 79)),
    ],
)
def test_statically_relaxable_witnesses_relaxed_outcome(name, seeds):
    """Pinned witness schedules: the delays the analyzer calls relaxable
    are real machine behaviors, not just axiom slack.

    (isa2 is relaxable too, but its window — the first write buffered
    across a two-reader causality chain — is too narrow to witness at
    these jitters; machine soundness only requires observed ⊆ allowed.)
    """
    test = TESTS[name]
    assert check_labels(test).relaxable
    observed = observe_outcomes(
        test, "primitives", "bc", seeds=seeds, jitters=(10.0,)
    )
    assert observed & test.relaxed_outcomes


def test_racy_set_is_exactly_the_unsynchronized_tests():
    racy = {t.name for t in LITMUS_TESTS if not check_labels(t).synchronized}
    assert racy == {
        "mp", "sb", "lb", "s", "r", "wrc", "isa2", "iriw", "corr", "coww",
        "2+2w", "corw2",
    }


def test_relaxable_set_is_the_write_first_cross_location_shapes():
    """``relaxable`` (write-buffer delay can show) is strictly stronger
    than racy: read-first shapes (lb), atomic-write causality (wrc,
    iriw), and single-location tests (corr, coww) race but stay SC.
    This resolves iriw's old "conservative in the safe direction" note
    with a computed verdict, cross-checked by the axiomatic gate."""
    relaxable = {t.name for t in LITMUS_TESTS if check_labels(t).relaxable}
    # 2+2w is a write-first cross-location shape (buffering can invert the
    # two write pairs); corw2's race is per-location, so coherence keeps it
    # SC-only.
    assert relaxable == {"mp", "sb", "s", "r", "isa2", "2+2w"}


# -- generated-program corpus across protocols × buffered models -------------
#: Pinned (seed, n_threads, n_rounds) triples kept small so the full
#: protocol × model product stays cheap; regenerate with gen_program on
#: any corpus change.
CORPUS = ((11, 2, 2), (23, 3, 1), (42, 2, 3))


@pytest.mark.parametrize("protocol", ("wbi", "primitives", "writeupdate"))
@pytest.mark.parametrize("model", BUFFERED_MODELS)
def test_corpus_passes_derived_oracles(protocol, model):
    """run_program's oracles (now fed by derive_consume_allowed) accept
    every observed value: the static allowed sets are sound."""
    for seed, n_threads, n_rounds in CORPUS:
        p = gen_program(
            np.random.default_rng(seed), n_threads=n_threads, n_rounds=n_rounds
        )
        failure = run_program(p, protocol, model, seed=seed, jitter=2.0)
        assert failure is None, f"corpus seed {seed} on {protocol}×{model}: {failure}"


def test_corpus_classifications_are_pinned():
    """The corpus stays interesting: it must contain both a properly
    labeled program and a statically racy one."""
    verdicts = set()
    for seed, n_threads, n_rounds in CORPUS:
        p = gen_program(
            np.random.default_rng(seed), n_threads=n_threads, n_rounds=n_rounds
        )
        verdicts.add(analyze_program(p).properly_labeled)
    assert verdicts == {True, False}
