"""The NP/CP-Synch labeling table: one source of truth across layers.

:mod:`repro.sync.base` declares the table; the consistency models, the
static analyzer's fence rules, and ``verified_result``'s per-run labeling
assertion must all agree with it.
"""

import pytest

from repro.consistency.models import get_model
from repro.static.drf import lower_litmus
from repro.sync.base import (
    BARRIER_SYNC_LABELS,
    CBLLock,
    CP_SYNCH_OPS,
    HWBarrier,
    LOCK_SYNC_LABELS,
    NP_SYNCH_OPS,
    expected_label,
    sync_labeling,
)
from repro.sync.swlock import SWBarrier
from repro.system.config import MachineConfig
from repro.system.machine import Machine
from repro.verify.litmus import ACQ, BAR, FLUSH, REL, W
from repro.workloads.base import LOCK_FACTORIES, verified_result


# -- the table itself --------------------------------------------------------
def test_table_partitions_the_sync_ops():
    assert not (NP_SYNCH_OPS & CP_SYNCH_OPS)
    assert expected_label("acquire") == "NP-Synch"
    for kind in ("release", "barrier", "flush"):
        assert expected_label(kind) == "CP-Synch"
    with pytest.raises(ValueError):
        expected_label("compute")


def test_every_primitive_declares_the_table():
    for cls in LOCK_FACTORIES.values():
        assert cls.sync_labels == LOCK_SYNC_LABELS, cls
    for cls in (HWBarrier, SWBarrier):
        assert cls.sync_labels == BARRIER_SYNC_LABELS, cls


def test_mislabeled_primitive_is_rejected():
    class Backwards:
        sync_labels = {"acquire": "CP-Synch", "release": "NP-Synch"}

    class Undeclared:
        pass

    class UnknownOp:
        sync_labels = {"open": "NP-Synch"}

    with pytest.raises(ValueError, match="acquire is labeled 'CP-Synch'"):
        sync_labeling(Backwards())
    with pytest.raises(ValueError, match="declares no sync_labels"):
        sync_labeling(Undeclared())
    with pytest.raises(ValueError, match="unknown operation 'open'"):
        sync_labeling(UnknownOp())


# -- the consistency models implement the table ------------------------------
@pytest.mark.parametrize("name", ("bc", "wo", "rc"))
def test_buffered_models_fence_every_cp_synch_op(name):
    model = get_model(name)
    assert model.flush_before_release  # release and barrier both fence


@pytest.mark.parametrize("name", ("bc", "rc"))
def test_np_synch_does_not_fence_under_the_papers_models(name):
    # WO fences acquires too — strictly stronger than the table requires,
    # which is the safe direction; BC and RC match the table exactly.
    assert not get_model(name).flush_before_acquire


# -- the analyzer derives its fence rule from the table ----------------------
def test_lowering_fence_epochs_follow_the_table():
    ir = lower_litmus(
        ((W("a", 1), ACQ("L"), W("b", 1), REL("L"), W("c", 1),
          FLUSH(), W("d", 1), BAR("x"), W("e", 1)),)
    )
    epochs = {a.var: a.fence_epoch for a in ir.accesses}
    # acquire bumps nothing; release, flush, and barrier each bump.
    assert epochs == {"a": 0, "b": 0, "c": 1, "d": 2, "e": 3}


# -- verified_result asserts the labeling ------------------------------------
def test_verified_result_records_and_validates_labeling():
    machine = Machine(MachineConfig(n_nodes=4, seed=0))
    lock = CBLLock(machine)
    bar = HWBarrier(machine, n=4)
    result = verified_result(
        machine, completion_time=0.0, messages=0, flits=0,
        sync_objects=[lock, bar],
    )
    assert result.extra["labeling"] == {
        "CBLLock": LOCK_SYNC_LABELS,
        "HWBarrier": BARRIER_SYNC_LABELS,
    }

    class RogueLock:
        sync_labels = {"release": "NP-Synch"}

    with pytest.raises(ValueError, match="RogueLock"):
        verified_result(
            machine, completion_time=0.0, messages=0, flits=0,
            sync_objects=[RogueLock()],
        )
