"""The DRF analyzer vs the litmus corpus (:mod:`repro.static.drf`).

Every hand-maintained ``synchronized=`` flag in the suite must equal the
analyzer's derived classification — the flags survive purely as
cross-checked assertions (satellite: flag cross-check).
"""

import dataclasses

import pytest

from repro.static.drf import (
    LabelMismatch,
    check_labels,
    classification_for,
    classify_litmus,
    lower_litmus,
)
from repro.verify.litmus import (
    ACQ,
    BAR,
    COMPUTE,
    FLUSH,
    INC,
    LITMUS_TESTS,
    R,
    REL,
    W,
)

TESTS = {t.name: t for t in LITMUS_TESTS}


# -- every flag is derivable -------------------------------------------------
@pytest.mark.parametrize("test", LITMUS_TESTS, ids=lambda t: t.name)
def test_flag_matches_derived_classification(test):
    cls = check_labels(test)  # raises LabelMismatch on disagreement
    assert cls.synchronized == test.synchronized


def test_mislabeled_test_is_caught():
    lie = dataclasses.replace(TESTS["mp"], name="mp-mislabeled", synchronized=True)
    with pytest.raises(LabelMismatch, match="mp-mislabeled"):
        check_labels(lie)


# -- per-test structure ------------------------------------------------------
def test_mp_reports_both_races():
    cls = classification_for(TESTS["mp"])
    assert not cls.properly_labeled and not cls.synchronized
    assert {r.var for r in cls.races} == {"x", "flag"}
    race = next(r for r in cls.races if r.var == "x")
    assert (race.thread_a, race.index_a) == (0, 0)  # W(x,1) is t0 op 0
    assert race.thread_b == 1
    assert "release/acquire" in race.reason


def test_barrier_and_lock_tests_are_properly_labeled():
    for name in ("mp+barrier", "mp+lock", "lock-inc", "ru-stale"):
        cls = classification_for(TESTS[name])
        assert cls.properly_labeled, f"{name}: {[r.describe() for r in cls.races]}"
        assert not cls.races


def test_sb_flush_is_racy_but_fence_covered():
    """sb+flush keeps its races (no sync orders the threads) yet every
    same-thread racy pair is separated by a FLUSH — SC outcomes only."""
    cls = classification_for(TESTS["sb+flush"])
    assert cls.races and not cls.unfenced
    assert not cls.properly_labeled and cls.synchronized


def test_iriw_races_are_read_pairs_too():
    """IRIW's reader threads race only via reads against the writers; the
    fence rule must still count them or iriw misclassifies as synchronized."""
    cls = classification_for(TESTS["iriw"])
    assert len(cls.races) == 4
    assert not cls.synchronized
    assert cls.unfenced  # the reader threads' back-to-back racy reads


# -- ordering rules on hand-built programs -----------------------------------
def test_barrier_orders_only_across_a_crossing():
    # Write before the crossing, read after it: ordered.
    ordered = ((W("x", 1), BAR("b")), (BAR("b"), R("x", "r0")))
    assert classify_litmus(ordered).properly_labeled
    # Both sides after their (only) crossing: same phase, no edge.
    racy = ((BAR("b"), W("x", 1)), (BAR("b"), R("x", "r0")))
    cls = classify_litmus(racy)
    assert not cls.properly_labeled and len(cls.races) == 1


def test_distinct_locks_do_not_order():
    racy = (
        (ACQ("L1"), INC("c", "r0"), REL("L1")),
        (ACQ("L2"), INC("c", "r1"), REL("L2")),
    )
    cls = classify_litmus(racy)
    assert not cls.properly_labeled
    assert all("no common lock" in r.reason for r in cls.races)


def test_flush_covers_only_pairs_it_separates():
    # One thread's racy write/read pair with no fence between them.
    cls = classify_litmus(((W("x", 1), R("y", "r0")), (W("y", 1), R("x", "r1"))))
    assert cls.unfenced and not cls.synchronized
    # A flush in one thread only: the other thread's pair stays unfenced.
    cls = classify_litmus(
        ((W("x", 1), FLUSH(), R("y", "r0")), (W("y", 1), R("x", "r1")))
    )
    assert cls.unfenced and not cls.synchronized


def test_compute_is_not_a_shared_access():
    ir = lower_litmus(((COMPUTE(10), W("x", 1)),))
    assert len(ir.accesses) == 1 and ir.accesses[0].kind == "w"


# -- report plumbing ---------------------------------------------------------
def test_race_report_serializes():
    cls = classification_for(TESTS["mp"])
    doc = cls.to_dict()
    assert doc["synchronized"] is False and doc["properly_labeled"] is False
    assert len(doc["races"]) == 2
    race = doc["races"][0]
    assert {"var", "a", "b", "reason"} <= set(race)
    assert {"thread", "index", "kind"} <= set(race["a"])
    assert "race on" in cls.races[0].describe()


def test_classification_counts():
    cls = classification_for(TESTS["mp+lock"])
    assert cls.n_threads == 2
    assert cls.n_sync_ops == 4  # two acquire/release pairs
