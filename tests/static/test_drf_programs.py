"""The DRF analyzer over fuzzer programs: lowering, classification, and the
derived consume oracle (:func:`repro.static.drf.derive_consume_allowed`)."""

import numpy as np
import pytest

from repro.static.drf import (
    ROUND_BARRIER,
    analyze_program,
    derive_consume_allowed,
    lower_fuzz_program,
)
from repro.verify.fuzz import Atom, Program, consume_allowed, gen_program


def prog(*rounds, n_threads=2):
    return Program(n_threads=n_threads, rounds=tuple(rounds))


# -- lowering ----------------------------------------------------------------
def test_private_traffic_never_conflicts():
    p = prog(((Atom("private", 2),), (Atom("private", 2),)))
    ir = lower_fuzz_program(p)
    assert {a.var for a in ir.accesses} == {"private:0", "private:1"}
    assert analyze_program(p).properly_labeled


def test_lock_inc_lowers_inside_the_critical_section():
    p = prog(((Atom("lock_inc", 3),), ()))
    ir = lower_fuzz_program(p)
    read, write = ir.accesses
    assert read.var == write.var == "lockctr:3"
    assert read.locks == write.locks == frozenset({"lock:3"})
    assert not read.is_write and write.is_write


def test_rmw_inc_is_a_labeled_access():
    p = prog(((Atom("rmw_inc"),), (Atom("rmw_inc"),)))
    ir = lower_fuzz_program(p)
    assert all(a.labeled and a.var == "rmw" for a in ir.accesses)
    # Two labeled accesses may conflict without racing.
    assert analyze_program(p).properly_labeled


def test_round_boundary_becomes_a_barrier_crossing():
    p = prog(
        ((Atom("publish", 1),), ()),
        ((), (Atom("consume", 0),)),
    )
    ir = lower_fuzz_program(p)
    assert all(t[ROUND_BARRIER] == 1 for t in ir.barrier_totals)
    consume = next(a for a in ir.accesses if a.kind == "consume")
    assert consume.phases[ROUND_BARRIER] == 1


def test_single_round_program_has_no_implicit_barrier():
    # run_program only builds a HWBarrier when len(rounds) > 1; the
    # lowering must match or it would invent ordering that never executes.
    p = prog(((Atom("publish", 1),), (Atom("consume", 0),)))
    ir = lower_fuzz_program(p)
    assert all(not t for t in ir.barrier_totals)


# -- classification ----------------------------------------------------------
def test_same_round_publish_consume_races():
    p = prog(((Atom("publish", 1),), (Atom("consume", 0),)))
    cls = analyze_program(p)
    assert not cls.properly_labeled
    assert cls.races[0].var == "slot:0"


def test_cross_round_publish_consume_is_ordered():
    p = prog(
        ((Atom("publish", 1),), ()),
        ((), (Atom("consume", 0),)),
    )
    assert analyze_program(p).properly_labeled


def test_shared_lock_orders_counter_traffic():
    same = prog(((Atom("lock_inc", 0),), (Atom("lock_inc", 0),)))
    assert analyze_program(same).properly_labeled
    different = prog(((Atom("lock_inc", 0),), (Atom("lock_inc", 1),)))
    # Different locks guard different counters — no conflict either.
    assert analyze_program(different).properly_labeled


def test_generated_multi_round_programs_classify_without_error():
    for seed in range(25):
        p = gen_program(np.random.default_rng(seed))
        cls = analyze_program(p)
        # Races, when present, only ever involve publish/consume slots:
        # everything else is private, lock-protected, or labeled.
        assert all(r.var.startswith("slot:") for r in cls.races)


# -- derived consume oracle --------------------------------------------------
def _closed_form(program, round_idx, target):
    """The hand-coded oracle the derived one replaced (kept as the spec)."""
    last = 0
    for r in range(round_idx):
        for atom in program.rounds[r][target]:
            if atom.kind == "publish":
                last = atom.arg
    allowed = {last}
    for atom in program.rounds[round_idx][target]:
        if atom.kind == "publish":
            allowed.add(atom.arg)
    return allowed


def test_derived_oracle_matches_closed_form_on_generated_corpus():
    for seed in range(120):
        p = gen_program(np.random.default_rng(seed))
        for r in range(len(p.rounds)):
            for target in range(p.n_threads):
                assert derive_consume_allowed(p, r, target) == _closed_form(
                    p, r, target
                ), f"seed={seed} round={r} target={target}"


def test_fuzz_consume_allowed_is_the_derived_oracle():
    p = gen_program(np.random.default_rng(7))
    for r in range(len(p.rounds)):
        for target in range(p.n_threads):
            assert consume_allowed(p, r, target) == derive_consume_allowed(
                p, r, target
            )


def test_derived_oracle_hand_cases():
    p = prog(
        ((Atom("publish", 1), Atom("publish", 2)), ()),
        ((), (Atom("consume", 0),)),
        ((Atom("publish", 3),), (Atom("consume", 0),)),
    )
    # Round 0: concurrent with both publishes; initial value still visible.
    assert derive_consume_allowed(p, 0, 0) == {0, 1, 2}
    # Round 1: only the program-order-last prior publish.
    assert derive_consume_allowed(p, 1, 0) == {2}
    # Round 2: last prior value or the concurrent publish.
    assert derive_consume_allowed(p, 2, 0) == {2, 3}
    # A never-published slot reads its initial value.
    assert derive_consume_allowed(p, 1, 1) == {0}


def test_slots_stay_single_writer_under_lowering():
    # publish always writes the executing thread's own slot, so each slot
    # has exactly one writing thread — the invariant the oracle asserts.
    p = prog(((Atom("publish", 1),), (Atom("publish", 9),)))
    ir = lower_fuzz_program(p)
    writers = {a.var: a.thread for a in ir.accesses if a.is_write}
    assert writers == {"slot:0": 0, "slot:1": 1}
    assert derive_consume_allowed(p, 0, 1) == {0, 9}
