"""Per-rule unit tests for the determinism linter (:mod:`repro.static.lint`)."""

import textwrap

from repro.static.lint import RULES, lint_source


def findings(source, rules=None):
    return lint_source(textwrap.dedent(source), "mod.py", rules=rules)


def rules_hit(source, rules=None):
    return {f.rule for f in findings(source, rules=rules)}


def test_rule_catalog_is_stable():
    assert [r.name for r in RULES] == [
        "unseeded-random",
        "wall-clock",
        "set-iteration",
        "unsorted-dict-fanout",
        "yieldless-process",
        "ungated-trace",
    ]


# -- unseeded-random ---------------------------------------------------------
def test_module_global_random_is_flagged():
    assert rules_hit("import random\nx = random.random()\n") == {"unseeded-random"}
    assert rules_hit("import random\nrandom.shuffle(items)\n") == {"unseeded-random"}


def test_seedless_constructors_are_flagged():
    assert rules_hit("r = random.Random()\n") == {"unseeded-random"}
    assert rules_hit("g = np.random.default_rng()\n") == {"unseeded-random"}
    assert rules_hit("x = np.random.randint(4)\n") == {"unseeded-random"}


def test_seeded_constructions_are_clean():
    assert not findings("r = random.Random(7)\n")
    assert not findings("g = np.random.default_rng(7)\n")
    assert not findings("x = rng.integers(0, 4)\n")  # a passed-in generator


# -- wall-clock --------------------------------------------------------------
def test_wall_clock_reads_are_flagged():
    assert rules_hit("t = time.time()\n") == {"wall-clock"}
    assert rules_hit("t = time.monotonic_ns()\n") == {"wall-clock"}
    assert rules_hit("d = datetime.now()\n") == {"wall-clock"}


def test_simulated_time_is_clean():
    assert not findings("now = sim.now\n")
    assert not findings("t = time.sleep\n")  # attribute load, not a call


# -- set-iteration -----------------------------------------------------------
def test_set_iteration_is_flagged_in_loops_and_comprehensions():
    assert rules_hit("for s in {1, 2}:\n    pass\n") == {"set-iteration"}
    assert rules_hit("xs = [f(s) for s in set(items)]\n") == {"set-iteration"}
    assert rules_hit("for s in a.union(b):\n    pass\n") == {"set-iteration"}
    assert rules_hit("for s in entry.sharers:\n    pass\n") == {"set-iteration"}


def test_set_local_dataflow_is_tracked_within_a_function():
    src = """
    def fanout(entry):
        targets = set(entry.ids)
        for t in targets:
            send(t)
    """
    assert rules_hit(src) == {"set-iteration"}


def test_sorted_sets_and_dicts_are_clean():
    assert not findings("for s in sorted(entry.sharers):\n    pass\n")
    assert not findings("for k in mapping:\n    pass\n")  # dicts are ordered
    assert not findings("for k, v in mapping.items():\n    pass\n")


def test_set_operator_expression_is_flagged():
    src = "for n in set(a) | set(b):\n    pass\n"
    assert "set-iteration" in rules_hit(src)


# -- unsorted-dict-fanout ----------------------------------------------------
def test_dict_view_into_send_is_flagged():
    src = """
    def drain(self, pending):
        for key, msg in pending.items():
            self.send(key, msg)
    """
    assert rules_hit(src) == {"unsorted-dict-fanout"}


def test_dict_view_into_trace_emission_is_flagged():
    src = """
    for node in table.keys():
        obs.instant("evt", "net", node)
    """
    # The emission itself is also ungated here; both rules fire.
    assert "unsorted-dict-fanout" in rules_hit(src)


def test_dict_view_comprehension_fanout_is_flagged():
    src = "acks = [self.reply_to(m) for m in waiting.values()]\n"
    assert rules_hit(src) == {"unsorted-dict-fanout"}


def test_sorted_dict_view_fanout_is_clean():
    src = """
    def drain(self, pending):
        for key, msg in sorted(pending.items()):
            self.send(key, msg)
    """
    assert not findings(src)


def test_dict_view_without_fanout_is_clean():
    src = """
    def total(self, pending):
        acc = 0
        for _k, v in pending.items():
            acc += v
        return acc
    """
    assert not findings(src)


def test_dict_fanout_suppression_works():
    src = """
    def drain(self, pending):
        # insertion order fixed: keys added in node-id order at build time
        for key, msg in pending.items():  # lint-ok: unsorted-dict-fanout
            self.send(key, msg)
    """
    assert not findings(src)


# -- yieldless-process -------------------------------------------------------
def test_spawn_of_yieldless_function_is_flagged():
    src = """
    def worker(proc):
        proc.tick()

    machine.spawn(worker(p))
    """
    assert rules_hit(src) == {"yieldless-process"}


def test_spawn_of_generator_is_clean():
    src = """
    def worker(proc):
        yield from proc.compute(5)

    machine.spawn(worker(p))
    """
    assert not findings(src)


def test_spawn_of_unknown_callable_is_not_guessed_about():
    # The target is defined elsewhere; the rule stays silent rather than
    # reporting a false positive.
    assert not findings("machine.spawn(imported_worker(p))\n")


# -- ungated-trace -----------------------------------------------------------
def test_ungated_emission_is_flagged():
    assert rules_hit("obs.instant('evt', t=1)\n") == {"ungated-trace"}
    src = """
    def f(self):
        self.obs.counter("hits", 1)
    """
    assert rules_hit(src) == {"ungated-trace"}


def test_gated_emission_is_clean():
    src = """
    if obs is not None:
        obs.instant("evt", t=1)
    """
    assert not findings(src)
    src = """
    def f(self):
        if self.obs is not None:
            self.obs.span("phase", 1, 2)
    """
    assert not findings(src)


def test_other_receivers_are_ignored():
    assert not findings("tracer.instant('evt')\n")  # not the obs bus


# -- suppression -------------------------------------------------------------
def test_same_line_suppression():
    assert not findings("t = time.time()  # lint-ok: wall-clock (reporting)\n")


def test_comment_line_suppression_covers_next_line():
    src = "# lint-ok: wall-clock (budget code)\nt = time.time()\n"
    assert not findings(src)


def test_suppression_is_per_rule():
    src = "t = time.time()  # lint-ok: unseeded-random\n"
    assert rules_hit(src) == {"wall-clock"}  # wrong rule name: not covered


def test_multi_rule_suppression():
    src = "xs = [time.time() for s in set(a)]  # lint-ok: wall-clock, set-iteration\n"
    assert not findings(src)


# -- driver plumbing ---------------------------------------------------------
def test_rule_subset_restricts_checks():
    src = "t = time.time()\nfor s in set(a):\n    pass\n"
    assert rules_hit(src, rules=["wall-clock"]) == {"wall-clock"}


def test_syntax_error_becomes_a_finding():
    out = findings("def broken(:\n")
    assert [f.rule for f in out] == ["syntax-error"]


def test_finding_format_and_sort():
    out = findings("t = time.time()\nx = random.random()\n")
    assert [f.line for f in out] == [1, 2]
    assert out[0].format().startswith("mod.py:1:")
    assert "[wall-clock]" in out[0].format()
