"""Property-based tests over whole-machine runs: random programs must
preserve protocol invariants and match a functional oracle."""

from hypothesis import given, settings, strategies as st

from repro import CBLLock, Machine, MachineConfig
from repro.verify import check_all


@st.composite
def wbi_program(draw):
    """A random per-node straight-line program of coherent ops."""
    n_nodes = draw(st.sampled_from([2, 4]))
    n_blocks = draw(st.integers(1, 4))
    progs = []
    for node in range(n_nodes):
        ops = draw(
            st.lists(
                st.tuples(
                    st.sampled_from(["read", "write", "rmw_add"]),
                    st.integers(0, n_blocks * 4 - 1),
                    st.integers(0, 9),
                ),
                max_size=12,
            )
        )
        progs.append(ops)
    return n_nodes, progs


@given(wbi_program())
@settings(max_examples=25, deadline=None)
def test_wbi_random_programs_keep_invariants(prog):
    n_nodes, progs = prog
    cfg = MachineConfig(n_nodes=n_nodes, cache_blocks=8, cache_assoc=2)
    m = Machine(cfg, protocol="wbi")

    def driver(p, ops):
        for op, addr, val in ops:
            if op == "read":
                yield from p.read(addr)
            elif op == "write":
                yield from p.write(addr, val)
            else:
                yield from p.rmw(addr, "fetch_add", val)

    for i, ops in enumerate(progs):
        m.spawn(driver(m.processor(i), ops))
    m.run()
    check_all(m)  # raises InvariantViolation on any protocol breakage


@given(
    n_nodes=st.sampled_from([2, 4, 8]),
    incs_per_node=st.integers(1, 5),
    cs_len=st.integers(0, 30),
)
@settings(max_examples=15, deadline=None)
def test_cbl_counter_oracle(n_nodes, incs_per_node, cs_len):
    """Lock-protected increments always sum exactly (mutual exclusion +
    grant-carries-data), for any contention pattern."""
    cfg = MachineConfig(n_nodes=n_nodes, cache_blocks=64, cache_assoc=2)
    m = Machine(cfg, protocol="primitives")
    lock = CBLLock(m)

    def w(p):
        for _ in range(incs_per_node):
            yield from p.acquire(lock)
            v = yield from lock.read_data(p, 0)
            yield from p.compute(cs_len)
            yield from lock.write_data(p, 0, v + 1)
            yield from p.release(lock)

    for i in range(n_nodes):
        m.spawn(w(m.processor(i)))
    m.run()
    check_all(m)
    assert m.peek_memory(m.amap.word_addr(lock.block, 0)) == n_nodes * incs_per_node


@given(
    n_subs=st.integers(1, 6),
    n_writes=st.integers(1, 5),
    strict=st.booleans(),
    mode=st.sampled_from(["multicast", "chain"]),
)
@settings(max_examples=20, deadline=None)
def test_read_update_delivery_oracle(n_subs, n_writes, strict, mode):
    """Every subscriber ends with the final written value, for any number
    of subscribers/writes, either propagation mode, strict or not."""
    cfg = MachineConfig(
        n_nodes=8,
        cache_blocks=64,
        cache_assoc=2,
        strict_global_ack=strict,
        ru_propagation=mode,
    )
    m = Machine(cfg, protocol="primitives")
    block = m.alloc_block()
    addr = m.amap.word_addr(block, 0)
    writer = m.processor(0)

    def sub(p):
        yield from p.read_update(addr)

    def write_all():
        yield writer.sim.timeout(200)  # let subscriptions settle
        for k in range(1, n_writes + 1):
            yield from writer.write_global(addr, k)
        yield from writer.flush()

    for i in range(1, n_subs + 1):
        m.spawn(sub(m.processor(i)))
    m.spawn(write_all())
    m.run()
    check_all(m)
    for i in range(1, n_subs + 1):
        line = m.nodes[i].cache.peek(block)
        assert line is not None
        if strict:
            assert line.data[0] == n_writes
        else:
            # Without strict acks delivery may trail the flush, but the run
            # has fully drained by now, so the value must still be final.
            assert line.data[0] == n_writes
