"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.cache import LineState, SetAssocCache
from repro.coherence.wbi import apply_rmw
from repro.memory import AddressMap
from repro.network import num_stages, omega_route
from repro.sim import RngStreams, Simulator, Store, Tally
from repro.workloads.workqueue import _TaskGraph


# ----------------------------------------------------------------- address map


@given(
    n_nodes=st.sampled_from([1, 2, 4, 8, 16, 64]),
    wpb=st.integers(1, 16),
    addr=st.integers(0, 10**6),
)
def test_address_roundtrip(n_nodes, wpb, addr):
    amap = AddressMap(n_nodes, wpb)
    block, off = amap.block_of(addr), amap.offset_of(addr)
    assert amap.word_addr(block, off) == addr
    assert 0 <= amap.home_of(block) < n_nodes


@given(n_nodes=st.sampled_from([2, 4, 8]), wpb=st.integers(1, 8), block=st.integers(0, 1000))
def test_words_of_block_partition(n_nodes, wpb, block):
    amap = AddressMap(n_nodes, wpb)
    words = list(amap.words_of(block))
    assert len(words) == wpb
    assert all(amap.block_of(w) == block for w in words)


# ----------------------------------------------------------------- omega routing


@given(
    n=st.sampled_from([2, 4, 8, 16, 32, 64, 128]),
    data=st.data(),
)
def test_omega_route_properties(n, data):
    src = data.draw(st.integers(0, n - 1))
    dst = data.draw(st.integers(0, n - 1))
    wires = omega_route(src, dst, n)
    assert len(wires) == num_stages(n)
    assert wires[-1] == dst
    assert all(0 <= w < n for w in wires)


@given(n=st.sampled_from([4, 8, 16]), data=st.data())
def test_omega_routes_to_same_dst_converge_monotonically(n, data):
    """Once two paths to the same destination merge, they stay merged."""
    dst = data.draw(st.integers(0, n - 1))
    s1 = data.draw(st.integers(0, n - 1))
    s2 = data.draw(st.integers(0, n - 1))
    r1, r2 = omega_route(s1, dst, n), omega_route(s2, dst, n)
    merged = False
    for w1, w2 in zip(r1, r2):
        if merged:
            assert w1 == w2
        if w1 == w2:
            merged = True
    assert merged  # they at least share the final wire


# ----------------------------------------------------------------- tally


@given(st.lists(st.floats(-1e6, 1e6), min_size=1), st.lists(st.floats(-1e6, 1e6), min_size=1))
def test_tally_merge_equals_pooled(xs, ys):
    a, b, pooled = Tally(), Tally(), Tally()
    for x in xs:
        a.observe(x)
        pooled.observe(x)
    for y in ys:
        b.observe(y)
        pooled.observe(y)
    a.merge(b)
    assert a.n == pooled.n
    assert abs(a.mean - pooled.mean) < 1e-6 * max(1.0, abs(pooled.mean))
    assert a.min == pooled.min and a.max == pooled.max


# ----------------------------------------------------------------- store


@given(st.lists(st.integers(0, 2), min_size=1, max_size=60))
def test_store_is_fifo_under_any_program(ops):
    """Random interleavings of puts and gets preserve FIFO order."""
    sim = Simulator()
    store = Store(sim)
    got = []
    next_item = [0]

    def driver(sim):
        for op in ops:
            if op < 2:  # put (twice as likely)
                yield store.put(next_item[0])
                next_item[0] += 1
            else:
                if len(store) > 0:
                    v = yield store.get()
                    got.append(v)
            yield sim.timeout(1)

    sim.process(driver(sim))
    sim.run()
    assert got == sorted(got)
    assert got == list(range(len(got)))


# ----------------------------------------------------------------- cache


@given(st.lists(st.integers(0, 40), min_size=1, max_size=200))
def test_cache_structural_invariants(blocks):
    cache = SetAssocCache(4, 2, 4)
    now = 0.0
    for b in blocks:
        now += 1
        if cache.peek(b) is None:
            cache.install(b, [0] * 4, LineState.SHARED, now=now)
        line = cache.lookup(b, now=now)
        assert line is not None and line.block == b
        # Set discipline: a block only ever lives in its own set.
        assert cache.set_index(b) == cache.set_index(line.block)
    for s in cache._sets:
        if s is None:  # set never touched (lazily materialized)
            continue
        assert sum(1 for l in s if l.valid) <= cache.assoc
        valid_blocks = [l.block for l in s if l.valid]
        assert len(set(valid_blocks)) == len(valid_blocks)  # no duplicates


@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 3), st.integers(0, 99)), max_size=100))
def test_cache_dirty_words_tracked_exactly(writes):
    cache = SetAssocCache(4, 4, 4)
    oracle = {}
    for block, off, val in writes:
        line = cache.peek(block)
        if line is None:
            line, _ = cache.install(block, [0] * 4, LineState.EXCLUSIVE)
            oracle = {k: v for k, v in oracle.items() if k[0] != block or cache.peek(k[0])}
        line.write_word(off, val)
        oracle[(block, off)] = val
    for (block, off), val in oracle.items():
        line = cache.peek(block)
        if line is not None:
            assert line.read_word(off) == val
            assert line.dirty_mask & (1 << off)


# ----------------------------------------------------------------- rmw


@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_rmw_semantics(old, operand):
    assert apply_rmw("test_set", old, None) == 1
    assert apply_rmw("swap", old, operand) == operand
    assert apply_rmw("fetch_add", old, operand) == old + operand
    assert apply_rmw("write", old, operand) == operand
    assert apply_rmw("cas", old, (old, operand)) == operand
    if old != operand:
        assert apply_rmw("cas", old, (operand, 123)) == old


# ----------------------------------------------------------------- rng


@given(st.integers(0, 2**31), st.text(min_size=1, max_size=20))
def test_rng_streams_reproducible(seed, name):
    import numpy as np

    a = RngStreams(seed).stream(name).random(5)
    b = RngStreams(seed).stream(name).random(5)
    assert np.array_equal(a, b)


# ----------------------------------------------------------------- task graph


@given(
    n_tasks=st.integers(1, 40),
    dep_prob=st.floats(0, 1),
    seed=st.integers(0, 1000),
)
@settings(max_examples=50)
def test_task_graph_always_drains_and_respects_deps(n_tasks, dep_prob, seed):
    rng = RngStreams(seed).stream("g")
    g = _TaskGraph(n_tasks, dep_prob, rng)
    original_deps = [set(d) for d in g.deps]
    completed = []
    guard = 0
    while not g.drained:
        tid = g.take()
        assert tid is not None, "graph starved"
        assert all(d in g.completed for d in original_deps[tid]), "dep violated"
        g.complete(tid)
        completed.append(tid)
        guard += 1
        assert guard <= n_tasks + 1
    assert sorted(completed) == list(range(n_tasks))
