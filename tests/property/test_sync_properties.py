"""Property-based tests on synchronization: reader/writer invariants under
random lock programs, replay determinism, and barrier alignment."""

from hypothesis import given, settings, strategies as st

from repro import CBLLock, HWBarrier, HWSemaphore, Machine, MachineConfig
from repro.verify import check_all
from repro.workloads import TraceEntry, replay


@given(
    n_nodes=st.sampled_from([2, 4, 8]),
    ops_per_node=st.integers(1, 4),
    mode_bits=st.integers(0, 2**16 - 1),
    cs_len=st.integers(1, 40),
)
@settings(max_examples=20, deadline=None)
def test_reader_writer_invariant_random_programs(n_nodes, ops_per_node, mode_bits, cs_len):
    """For any interleaving of read/write lock requests: writers are
    exclusive, readers may share, nothing deadlocks, data survives."""
    cfg = MachineConfig(n_nodes=n_nodes, cache_blocks=64, cache_assoc=2)
    m = Machine(cfg, protocol="primitives")
    lock = CBLLock(m)
    state = {"readers": 0, "writers": 0}
    violations = []

    def w(p, seq):
        for k, is_read in enumerate(seq):
            mode = "read" if is_read else "write"
            yield from p.acquire(lock, mode)
            if mode == "read":
                state["readers"] += 1
                if state["writers"]:
                    violations.append(("r-while-w", p.node_id))
            else:
                state["writers"] += 1
                if state["writers"] > 1 or state["readers"]:
                    violations.append(("w-conflict", p.node_id))
            yield from p.compute(cs_len)
            if mode == "read":
                state["readers"] -= 1
            else:
                state["writers"] -= 1
            yield from p.release(lock)
            yield from p.compute(3)

    bit = 0
    for i in range(n_nodes):
        seq = []
        for k in range(ops_per_node):
            seq.append(bool((mode_bits >> (bit % 16)) & 1))
            bit += 1
        m.spawn(w(m.processor(i), seq))
    m.run()
    assert violations == []
    check_all(m)
    # Queue fully drained.
    home = m.nodes[m.amap.home_of(lock.block)]
    assert home.directory.entry(lock.block).lock_queue == []


@given(
    n_nodes=st.sampled_from([2, 4]),
    initial=st.integers(0, 3),
    ops=st.integers(1, 4),
)
@settings(max_examples=15, deadline=None)
def test_semaphore_conservation(n_nodes, initial, ops):
    """P/V pairs conserve the semaphore count; capacity never exceeded."""
    cfg = MachineConfig(n_nodes=n_nodes, cache_blocks=64, cache_assoc=2)
    m = Machine(cfg, protocol="primitives")
    sem = HWSemaphore(m, initial=initial + 1)
    active = [0]
    peak = [0]

    def w(p):
        for _ in range(ops):
            yield from sem.p(p)
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            yield from p.compute(11)
            active[0] -= 1
            yield from sem.v(p)

    for i in range(n_nodes):
        m.spawn(w(m.processor(i)))
    m.run()
    assert peak[0] <= initial + 1
    home = m.nodes[m.amap.home_of(sem.block)]
    entry = home.directory.entry(sem.block)
    assert entry.sem_count == initial + 1  # conserved
    assert entry.sem_waiters == []


@given(seed=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_replay_is_deterministic(seed):
    """Replaying the same trace twice gives identical completion times."""
    trace = [
        TraceEntry(node=i % 4, op="write_global", addr=(seed + i) % 16, value=i)
        for i in range(12)
    ] + [TraceEntry(node=i, op="flush") for i in range(4)]

    def run():
        cfg = MachineConfig(n_nodes=4, cache_blocks=64, cache_assoc=2, seed=seed)
        m = Machine(cfg, protocol="primitives")
        return replay(m, trace)

    assert run() == run()


@given(
    n_nodes=st.sampled_from([2, 4, 8]),
    rounds=st.integers(1, 3),
    skews=st.lists(st.integers(0, 200), min_size=8, max_size=8),
)
@settings(max_examples=15, deadline=None)
def test_barrier_never_releases_early(n_nodes, rounds, skews):
    """No participant leaves barrier k before every participant reached it."""
    cfg = MachineConfig(n_nodes=n_nodes, cache_blocks=64, cache_assoc=2)
    m = Machine(cfg, protocol="primitives")
    bar = HWBarrier(m, n=n_nodes)
    arrive = {}
    leave = {}

    def w(p, skew):
        for r in range(rounds):
            yield from p.compute(1 + skew)
            arrive.setdefault(r, {})[p.node_id] = p.sim.now
            yield from p.barrier(bar)
            leave.setdefault(r, {})[p.node_id] = p.sim.now

    for i in range(n_nodes):
        m.spawn(w(m.processor(i), skews[i % len(skews)]))
    m.run()
    for r in range(rounds):
        last_arrival = max(arrive[r].values())
        first_leave = min(leave[r].values())
        assert first_leave >= last_arrival
