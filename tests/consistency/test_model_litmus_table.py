"""Regression table: consistency-model flags × litmus-outcome oracle.

Pins the alignment between the policy objects in
:mod:`repro.consistency.models` (what each model *claims* about fences and
stalling, per its docstring) and the litmus oracle in
:mod:`repro.verify.litmus` (which outcomes the claim licenses).  If someone
edits a model flag, this file fails before any simulation runs, naming the
combination whose allowed-outcome set silently changed.
"""

import pytest

from repro.consistency import get_fault_model, get_model
from repro.verify import litmus
from repro.verify.litmus import (
    LITMUS_TESTS,
    LitmusViolation,
    allowed_outcomes,
    check_litmus_conformance,
    observe_outcomes,
)

MODELS = ("sc", "bc", "wo", "rc")
TESTS = {t.name: t for t in LITMUS_TESTS}


# -- flag table ------------------------------------------------------------
#       model  stall  flush@acq  flush@rel  rel-ack   (per each docstring)
FLAG_TABLE = {
    "sc": (True, False, False, False),  # one op at a time; nothing pending
    "bc": (False, False, True, False),  # paper: fence at CP-Synch only
    "wo": (False, True, True, True),  # every sync access a full fence
    "rc": (False, False, True, True),  # release-only fences, fully performed
}


@pytest.mark.parametrize("name", MODELS)
def test_model_flags_pinned(name):
    m = get_model(name)
    assert (
        m.stall_on_shared_write,
        m.flush_before_acquire,
        m.flush_before_release,
        m.release_wants_ack,
    ) == FLAG_TABLE[name]


def test_fault_models_weaken_exactly_one_flag():
    bc, bad_bc = get_model("bc"), get_fault_model("bc-no-release-fence")
    assert bc.flush_before_release and not bad_bc.flush_before_release
    assert bad_bc.flush_before_acquire == bc.flush_before_acquire
    assert bad_bc.stall_on_shared_write == bc.stall_on_shared_write

    wo, bad_wo = get_model("wo"), get_fault_model("wo-no-acquire-fence")
    assert wo.flush_before_acquire and not bad_wo.flush_before_acquire
    assert bad_wo.flush_before_release == wo.flush_before_release


def test_fault_models_not_reachable_via_get_model():
    with pytest.raises(ValueError):
        get_model("bc-no-release-fence")


# -- oracle table ----------------------------------------------------------
def test_sc_oracle_never_admits_relaxed_outcomes():
    for test in LITMUS_TESTS:
        for proto in test.protocols:
            allowed = allowed_outcomes(test, proto, "sc")
            assert allowed == test.sc_outcomes, (test.name, proto)


@pytest.mark.parametrize("model", ("bc", "wo", "rc"))
def test_buffered_models_relax_only_relaxable_tests_on_primitives(model):
    """Relaxed outcomes need a *relaxable* shape, not merely a racy one:
    a write the buffer can delay past a later racy cross-location access
    (see Classification.relaxable).  Racy-but-SC tests — lb, wrc, iriw,
    corr, coww — keep the SC set even on the buffered machine."""
    from repro.static.drf import check_labels

    for test in LITMUS_TESTS:
        for proto in test.protocols:
            allowed = allowed_outcomes(test, proto, model)
            relaxes = proto == "primitives" and check_labels(test).relaxable
            want = (
                test.sc_outcomes | test.relaxed_outcomes
                if relaxes
                else test.sc_outcomes
            )
            assert allowed == want, (test.name, proto, model)


def test_synchronized_tests_forbid_relaxed_everywhere():
    """CP/NP-Synch bridges every race: the oracle must stay SC-tight."""
    for test in LITMUS_TESTS:
        if not test.synchronized:
            continue
        for proto in test.protocols:
            for model in MODELS:
                assert allowed_outcomes(test, proto, model) == test.sc_outcomes


# -- observed behaviour pins the table to the simulator --------------------
def test_bc_on_primitives_exhibits_a_relaxed_mp_outcome():
    """The buffered machine actually produces the reordering bc licenses.

    The reordering needs heavy jitter: per-channel FIFO delivery keeps
    same-route traffic ordered, so only cross-home skew (the write to ``x``
    straggling while ``flag`` lands and is read) exposes it.  The seed set
    below is a known witness — deterministic, so stable forever.
    """
    observed = observe_outcomes(
        TESTS["mp"], "primitives", "bc", seeds=(27, 79, 103, 111), jitters=(10.0,)
    )
    relaxed_seen = observed & TESTS["mp"].relaxed_outcomes
    assert relaxed_seen, f"no relaxed outcome in {observed}"


def test_sc_on_primitives_stays_sequentially_consistent():
    observed = observe_outcomes(
        TESTS["mp"], "primitives", "sc", seeds=range(8), jitters=(0.0, 2.0, 6.0)
    )
    assert observed <= TESTS["mp"].sc_outcomes


def test_no_release_fence_fault_breaks_mp_barrier():
    """Dropping bc's one fence is observable — and flagged — on mp+barrier."""
    bad = get_fault_model("bc-no-release-fence")
    with pytest.raises(LitmusViolation):
        check_litmus_conformance(
            TESTS["mp+barrier"],
            "primitives",
            bad,
            seeds=range(20),
            jitters=(0.0, 3.0, 8.0),
        )


def test_all_registered_models_conform_on_every_test():
    """One healthy sweep (small budget; the fuzzer covers the long tail)."""
    for proto in ("wbi", "primitives", "writeupdate"):
        for test in litmus.tests_for(proto):
            for model in MODELS:
                check_litmus_conformance(
                    test, proto, model, seeds=range(3), jitters=(0.0, 3.0)
                )
