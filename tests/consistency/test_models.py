"""Unit tests for the consistency-model policy objects."""

import pytest

from repro import Machine, MachineConfig
from repro.consistency import (
    BufferedConsistency,
    ReleaseConsistency,
    SequentialConsistency,
    WeakOrdering,
    get_model,
)


def test_policy_flags_match_paper_semantics():
    sc, bc, wo, rc = (
        SequentialConsistency(),
        BufferedConsistency(),
        WeakOrdering(),
        ReleaseConsistency(),
    )
    # SC: stall everywhere, nothing ever pending so no fences needed.
    assert sc.stall_on_shared_write
    assert not sc.flush_before_acquire and not sc.flush_before_release
    # BC: buffer writes; CP-Synch (release) fences; NP-Synch (acquire) free;
    # releases do not wait for global performance.
    assert not bc.stall_on_shared_write
    assert not bc.flush_before_acquire
    assert bc.flush_before_release
    assert not bc.release_wants_ack
    # WO: every synchronization access is a fence, fully performed.
    assert wo.flush_before_acquire and wo.flush_before_release
    assert wo.release_wants_ack
    # RC: acquire free; release fenced and fully performed.
    assert not rc.flush_before_acquire
    assert rc.flush_before_release and rc.release_wants_ack


def test_get_model_returns_fresh_instances():
    assert get_model("bc") is not get_model("bc")


def test_fence_is_noop_without_write_buffer():
    m = Machine(MachineConfig(n_nodes=2, cache_blocks=64, cache_assoc=2), protocol="wbi")
    p = m.processor(0, consistency="wo")
    done = []

    def w():
        yield from p.model.fence(p)
        done.append(m.sim.now)

    m.spawn(w())
    m.run()
    assert done == [0]  # no stall, nothing to drain


def test_shared_write_stalls_only_under_sc():
    def pending_after_write(consistency):
        m = Machine(
            MachineConfig(n_nodes=2, cache_blocks=64, cache_assoc=2),
            protocol="primitives",
        )
        p = m.processor(0, consistency=consistency)
        out = {}

        def w():
            yield from p.shared_write(m.alloc_word(), 1)
            out["pending"] = m.nodes[0].write_buffer.pending_count

        m.spawn(w())
        m.run(until=5)  # before the ack can return
        return out.get("pending")

    assert pending_after_write("bc") == 1  # returned with the write in flight
    assert pending_after_write("sc") is None  # still stalled at t=5


@pytest.mark.parametrize("name", ["sc", "bc", "wo", "rc"])
def test_all_models_run_a_full_workload(name):
    from repro import CBLLock

    m = Machine(
        MachineConfig(n_nodes=4, cache_blocks=64, cache_assoc=2), protocol="primitives"
    )
    lock = CBLLock(m)
    data = m.alloc_word()

    def w(p):
        for _ in range(2):
            yield from p.acquire(lock)
            yield from p.shared_write(data, p.node_id)
            yield from p.release(lock)

    for i in range(4):
        m.spawn(w(m.processor(i, consistency=name)))
    m.run()
    # Everything drained: no pending writes anywhere.
    for node in m.nodes:
        assert node.write_buffer.pending_count == 0
