"""Unit tests for address mapping."""

import pytest

from repro.memory import AddressMap


def test_block_and_offset():
    amap = AddressMap(n_nodes=4, words_per_block=4)
    assert amap.block_of(0) == 0
    assert amap.block_of(3) == 0
    assert amap.block_of(4) == 1
    assert amap.offset_of(5) == 1
    assert amap.offset_of(4) == 0


def test_word_addr_roundtrip():
    amap = AddressMap(n_nodes=8, words_per_block=4)
    for block in (0, 3, 17):
        for off in range(4):
            w = amap.word_addr(block, off)
            assert amap.block_of(w) == block
            assert amap.offset_of(w) == off


def test_word_addr_offset_range_checked():
    amap = AddressMap(n_nodes=2, words_per_block=4)
    with pytest.raises(ValueError):
        amap.word_addr(0, 4)


def test_home_interleaving():
    amap = AddressMap(n_nodes=4, words_per_block=4)
    assert [amap.home_of(b) for b in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_words_of_block():
    amap = AddressMap(n_nodes=2, words_per_block=4)
    assert list(amap.words_of(2)) == [8, 9, 10, 11]


def test_negative_rejected():
    amap = AddressMap(n_nodes=2, words_per_block=4)
    with pytest.raises(ValueError):
        amap.block_of(-1)
    with pytest.raises(ValueError):
        amap.home_of(-1)


def test_constructor_validation():
    with pytest.raises(ValueError):
        AddressMap(n_nodes=0, words_per_block=4)
    with pytest.raises(ValueError):
        AddressMap(n_nodes=2, words_per_block=0)
