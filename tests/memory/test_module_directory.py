"""Unit tests for memory modules and the central directory."""

import pytest

from repro.memory import AddressMap, Directory, DirState, MemoryModule, Usage
from repro.network import Message, MessageType


@pytest.fixture
def amap():
    return AddressMap(n_nodes=4, words_per_block=4)


# ---------------------------------------------------------------- module


def test_memory_defaults_to_zero(amap):
    mem = MemoryModule(0, amap)
    assert mem.read_word(0) == 0
    assert mem.read_block(0) == [0, 0, 0, 0]


def test_memory_word_write_read(amap):
    mem = MemoryModule(1, amap)  # block 1 homed at node 1
    addr = amap.word_addr(1, 2)
    mem.write_word(addr, 99)
    assert mem.read_word(addr) == 99


def test_memory_rejects_foreign_blocks(amap):
    mem = MemoryModule(0, amap)
    with pytest.raises(ValueError):
        mem.read_block(1)  # homed at node 1
    with pytest.raises(ValueError):
        mem.write_word(amap.word_addr(2, 0), 5)


def test_memory_block_write_read(amap):
    mem = MemoryModule(2, amap)
    mem.write_block(2, [1, 2, 3, 4])
    assert mem.read_block(2) == [1, 2, 3, 4]


def test_memory_block_write_size_checked(amap):
    mem = MemoryModule(2, amap)
    with pytest.raises(ValueError):
        mem.write_block(2, [1, 2])


def test_write_dirty_words_merges_only_dirty(amap):
    """The per-word dirty mask write-back: two writers to different words of
    one block must not clobber each other."""
    mem = MemoryModule(0, amap)
    mem.write_block(0, [10, 20, 30, 40])
    # Writer A dirtied word 0 only; its stale copy of word 2 must not land.
    mem.write_dirty_words(0, [111, 0, 0, 0], dirty_mask=0b0001)
    # Writer B dirtied word 2 only.
    mem.write_dirty_words(0, [0, 0, 333, 0], dirty_mask=0b0100)
    assert mem.read_block(0) == [111, 20, 333, 40]


def test_memory_cycle_time_validation(amap):
    with pytest.raises(ValueError):
        MemoryModule(0, amap, cycle_time=0)


# ---------------------------------------------------------------- directory


def test_directory_entry_created_on_demand():
    d = Directory(0)
    assert 5 not in d
    e = d.entry(5)
    assert e.block == 5
    assert 5 in d
    assert d.entry(5) is e


def test_directory_entry_defaults():
    e = Directory(0).entry(1)
    assert e.usage is Usage.NONE
    assert e.state is DirState.UNOWNED
    assert e.queue_pointer is None
    assert e.sharers == set()
    assert e.owner is None
    assert not e.busy
    assert not e.lock_held


def test_directory_defer_replay_fifo():
    e = Directory(0).entry(1)
    m1 = Message(0, 1, MessageType.READ_MISS, addr=1)
    m2 = Message(2, 1, MessageType.READ_MISS, addr=1)
    e.defer(m1)
    e.defer(m2)
    assert e.pop_deferred() is m1
    assert e.pop_deferred() is m2
    assert e.pop_deferred() is None


def test_directory_known_blocks():
    d = Directory(3)
    d.entry(3)
    d.entry(7)
    assert sorted(d.known_blocks()) == [3, 7]
