"""Tests for the limited-directory (Dir_i-NB) WBI variant."""

import pytest

from repro import Machine, MachineConfig
from repro.network import MessageType
from repro.verify import check_all


def machine(limit, n=8):
    cfg = MachineConfig(
        n_nodes=n, cache_blocks=64, cache_assoc=2, directory_limit=limit
    )
    return Machine(cfg, protocol="wbi")


def read_all(m, addr, n):
    def r(p, d):
        yield p.sim.timeout(d)
        v = yield from p.read(addr)
        return v

    for i in range(n):
        m.spawn(r(m.processor(i), i * 50))
    m.run()


def test_limit_validation():
    with pytest.raises(ValueError):
        MachineConfig(directory_limit=0)


def test_full_map_never_evicts():
    m = machine(limit=None)
    addr = m.alloc_word()
    read_all(m, addr, 8)
    assert m.metrics().node_counters.get("wbi.dir_evictions", 0) == 0
    home = m.nodes[m.amap.home_of(m.amap.block_of(addr))]
    assert len(home.directory.entry(m.amap.block_of(addr)).sharers) == 8


def test_limited_directory_caps_sharers():
    m = machine(limit=3)
    addr = m.alloc_word()
    read_all(m, addr, 8)
    home = m.nodes[m.amap.home_of(m.amap.block_of(addr))]
    entry = home.directory.entry(m.amap.block_of(addr))
    assert len(entry.sharers) <= 3
    assert m.metrics().node_counters["wbi.dir_evictions"] == 5
    assert m.net.count_of(MessageType.INV) >= 5
    check_all(m)


def test_evicted_sharer_can_refetch():
    m = machine(limit=1, n=4)
    addr = m.alloc_word()
    m.poke(addr, 42)
    values = []

    def r(p, d):
        yield p.sim.timeout(d)
        v = yield from p.read(addr)
        yield p.sim.timeout(400)
        v2 = yield from p.read(addr)  # may need a re-fetch after eviction
        values.append((v, v2))

    for i in range(4):
        m.spawn(r(m.processor(i), i * 30))
    m.run()
    assert all(v == (42, 42) for v in values)
    check_all(m)


def test_limited_directory_correct_under_writes():
    """Writes still invalidate exactly the *registered* sharers and data
    stays coherent even though registration is lossy."""
    m = machine(limit=2)
    addr = m.alloc_word()

    def r(p, d):
        yield p.sim.timeout(d)
        yield from p.read(addr)

    def w(p):
        yield p.sim.timeout(500)
        yield from p.write(addr, 9)

    for i in range(6):
        m.spawn(r(m.processor(i), i * 40))
    m.spawn(w(m.processor(7)))
    m.run()
    check_all(m)
    # A fresh read anywhere must see the write.
    out = []

    def check(p):
        v = yield from p.read(addr)
        out.append(v)

    m.spawn(check(m.processor(3)))
    m.run()
    assert out == [9]


def test_smaller_limit_more_invalidation_traffic():
    def inv_traffic(limit):
        m = machine(limit=limit)
        addr = m.alloc_word()
        read_all(m, addr, 8)
        return m.net.count_of(MessageType.INV)

    assert inv_traffic(1) > inv_traffic(4)
