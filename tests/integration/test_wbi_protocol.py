"""Integration tests: WBI directory protocol on a full machine."""

import pytest

from repro import Machine, MachineConfig


def small_machine(n=4, **kw):
    cfg = MachineConfig(n_nodes=n, cache_blocks=64, cache_assoc=2, **kw)
    return Machine(cfg, protocol="wbi")


def run_one(m, gen):
    out = {}

    def wrapper():
        out["value"] = yield from gen
        return out.get("value")

    m.spawn(wrapper())
    m.run()
    return out.get("value")


def test_read_returns_memory_value():
    m = small_machine()
    addr = m.alloc_word()
    m.poke(addr, 42)
    p = m.processor(1)
    assert run_one(m, p.read(addr)) == 42


def test_read_default_zero():
    m = small_machine()
    addr = m.alloc_word()
    p = m.processor(0)
    assert run_one(m, p.read(addr)) == 0


def test_write_then_read_same_node():
    m = small_machine()
    addr = m.alloc_word()
    p = m.processor(2)

    def w():
        yield from p.write(addr, 7)
        v = yield from p.read(addr)
        return v

    assert run_one(m, w()) == 7


def test_write_visible_to_other_node():
    m = small_machine()
    addr = m.alloc_word()
    p0, p1 = m.processor(0), m.processor(1)
    log = []

    def writer():
        yield from p0.write(addr, 99)
        log.append("written")

    def reader():
        yield p0.sim.timeout(500)  # after the write completes
        v = yield from p1.read(addr)
        log.append(v)

    m.spawn(writer())
    m.spawn(reader())
    m.run()
    assert log == ["written", 99]


def test_dirty_data_recalled_from_owner():
    """A read miss must recall the dirty block from its exclusive owner."""
    m = small_machine()
    addr = m.alloc_word()
    results = []
    p0, p1 = m.processor(0), m.processor(1)

    def writer():
        yield from p0.write(addr, 5)  # exclusive dirty at node 0

    def reader():
        yield p1.sim.timeout(200)
        v = yield from p1.read(addr)
        results.append(v)

    m.spawn(writer())
    m.spawn(reader())
    m.run()
    assert results == [5]
    # Home must have recalled it: a FETCH went out.
    from repro.network import MessageType

    assert m.net.count_of(MessageType.FETCH) >= 1


def test_write_invalidates_sharers():
    m = small_machine()
    addr = m.alloc_word()
    p0, p1, p2 = m.processor(0), m.processor(1), m.processor(2)
    seen = []

    def sharer(p):
        v = yield from p.read(addr)
        seen.append(v)

    def writer():
        yield p0.sim.timeout(300)  # let both sharers cache it
        yield from p0.write(addr, 1)

    def late_reader():
        yield p1.sim.timeout(800)
        v = yield from p1.read(addr)
        seen.append(v)

    m.spawn(sharer(p1))
    m.spawn(sharer(p2))
    m.spawn(writer())
    m.spawn(late_reader())
    m.run()
    from repro.network import MessageType

    assert m.net.count_of(MessageType.INV) >= 2
    assert seen[-1] == 1


def test_upgrade_path_used_for_shared_hit():
    m = small_machine()
    addr = m.alloc_word()
    p = m.processor(3)

    def w():
        yield from p.read(addr)  # SHARED copy
        yield from p.write(addr, 2)  # upgrade, not write miss

    m.spawn(w())
    m.run()
    from repro.network import MessageType

    assert m.net.count_of(MessageType.UPGRADE) == 1
    assert m.net.count_of(MessageType.UPGRADE_ACK) == 1


def test_exclusive_write_hit_no_traffic():
    m = small_machine()
    addr = m.alloc_word()
    p = m.processor(1)

    def w():
        yield from p.write(addr, 1)
        before = m.net.message_count
        yield from p.write(addr, 2)  # exclusive hit: silent
        yield from p.write(addr, 3)
        return before

    before = run_one(m, w())
    assert m.net.message_count == before


def test_rmw_test_set_semantics():
    m = small_machine()
    addr = m.alloc_word()
    p0, p1 = m.processor(0), m.processor(1)
    olds = []

    def racer(p):
        old = yield from p.rmw(addr, "test_set")
        olds.append(old)

    m.spawn(racer(p0))
    m.spawn(racer(p1))
    m.run()
    assert sorted(olds) == [0, 1]  # exactly one winner


def test_rmw_fetch_add_accumulates():
    m = small_machine()
    addr = m.alloc_word()
    results = []

    def adder(p):
        old = yield from p.rmw(addr, "fetch_add", 1)
        results.append(old)

    for i in range(4):
        m.spawn(adder(m.processor(i)))
    m.run()
    assert sorted(results) == [0, 1, 2, 3]
    assert m.peek_memory(addr) == 4


def test_rmw_invalidates_cached_copies():
    m = small_machine()
    addr = m.alloc_word()
    p0, p1 = m.processor(0), m.processor(1)
    vals = []

    def reader_then_check():
        yield from p0.read(addr)  # cache a copy
        yield p0.sim.timeout(500)  # p1's RMW invalidates it
        v = yield from p0.read(addr)  # must re-fetch, see new value
        vals.append(v)

    def rmw_guy():
        yield p1.sim.timeout(100)
        yield from p1.rmw(addr, "write", 77)

    m.spawn(reader_then_check())
    m.spawn(rmw_guy())
    m.run()
    assert vals == [77]


def test_eviction_writes_back_dirty_data():
    """Fill a set so a dirty line is evicted, then read it back elsewhere."""
    cfg = MachineConfig(n_nodes=2, cache_blocks=4, cache_assoc=1)
    m = Machine(cfg, protocol="wbi")
    p = m.processor(0)
    # Two word addresses mapping to the same cache set (4 sets, 1 way):
    # block 0 and block 4 share set 0.
    a0 = m.amap.word_addr(0, 0)
    a4 = m.amap.word_addr(4, 0)
    vals = []

    def w():
        yield from p.write(a0, 11)  # dirty in cache
        yield from p.write(a4, 22)  # evicts block 0 -> writeback
        v = yield from p.read(a0)  # re-fetch from memory
        vals.append(v)

    m.spawn(w())
    m.run()
    assert vals == [11]
    from repro.network import MessageType

    assert m.net.count_of(MessageType.WRITEBACK) >= 1


def test_many_writers_serialize_correctly():
    """n writers incrementing via rmw end with exactly n in memory."""
    m = small_machine(n=8)
    addr = m.alloc_word()

    def incr(p):
        for _ in range(5):
            yield from p.rmw(addr, "fetch_add", 1)

    for i in range(8):
        m.spawn(incr(m.processor(i)))
    m.run()
    assert m.peek_memory(addr) == 40


def test_false_sharing_pingpong_under_wbi():
    """Two nodes writing different words of the same block ping-pong the
    line (the false-sharing problem motivating per-word dirty bits)."""
    m = small_machine(n=2)
    block = m.alloc_block()
    a0 = m.amap.word_addr(block, 0)
    a1 = m.amap.word_addr(block, 1)

    def writer(p, addr):
        for v in range(5):
            yield from p.write(addr, v)
            yield from p.compute(10)

    m.spawn(writer(m.processor(0), a0))
    m.spawn(writer(m.processor(1), a1))
    m.run()
    # Each write needs exclusivity: ownership bounces between the nodes.
    from repro.network import MessageType

    recalls = m.net.count_of(MessageType.FETCH_INV)
    assert recalls >= 4
    # Both final values are correct despite the ping-pong.
    assert m.peek_memory(a0) == 4 or m.nodes[0].cache.peek(block) is not None
