"""Integration tests: hardware counting semaphores."""

import pytest

from repro import HWSemaphore, Machine, MachineConfig
from repro.network import MessageType


def machine(n=8, protocol="primitives"):
    cfg = MachineConfig(n_nodes=n, cache_blocks=64, cache_assoc=2)
    return Machine(cfg, protocol=protocol)


def test_binary_semaphore_mutual_exclusion():
    m = machine()
    sem = HWSemaphore(m, initial=1)
    in_cs, violations = [], []

    def w(p):
        for _ in range(3):
            yield from sem.p(p)
            if in_cs:
                violations.append(p.node_id)
            in_cs.append(p.node_id)
            yield from p.compute(13)
            in_cs.pop()
            yield from sem.v(p)

    for i in range(6):
        m.spawn(w(m.processor(i)))
    m.run()
    assert violations == []


def test_counting_semaphore_bounds_concurrency():
    m = machine()
    sem = HWSemaphore(m, initial=3)
    active, peak = [0], [0]

    def w(p):
        yield from sem.p(p)
        active[0] += 1
        peak[0] = max(peak[0], active[0])
        yield from p.compute(100)
        active[0] -= 1
        yield from sem.v(p)

    for i in range(8):
        m.spawn(w(m.processor(i)))
    m.run()
    assert peak[0] == 3  # exactly the semaphore's capacity used


def test_fifo_wakeup_order():
    m = machine()
    sem = HWSemaphore(m, initial=1)
    order = []

    def w(p, delay):
        yield p.sim.timeout(delay)
        yield from sem.p(p)
        order.append(p.node_id)
        yield from p.compute(50)
        yield from sem.v(p)

    for i in range(5):
        m.spawn(w(m.processor(i), i * 10))
    m.run()
    assert order == [0, 1, 2, 3, 4]


def test_zero_initial_blocks_until_v():
    m = machine()
    sem = HWSemaphore(m, initial=0)
    log = []
    p0, p1 = m.processor(0), m.processor(1)

    def consumer():
        yield from sem.p(p0)
        log.append(("consumed", p0.sim.now))

    def producer():
        yield p1.sim.timeout(300)
        yield from sem.v(p1)

    m.spawn(consumer())
    m.spawn(producer())
    m.run()
    assert log and log[0][1] >= 300


def test_producer_consumer_pipeline():
    """Classic bounded-buffer with two semaphores."""
    m = machine()
    slots = HWSemaphore(m, initial=2)  # empty slots
    items = HWSemaphore(m, initial=0)  # filled slots
    buf = []
    consumed = []
    prod = m.processor(0)
    cons = m.processor(1)

    def producer():
        for k in range(6):
            yield from slots.p(prod)
            buf.append(k)
            yield from prod.compute(10)
            yield from items.v(prod)

    def consumer():
        for _ in range(6):
            yield from items.p(cons)
            consumed.append(buf.pop(0))
            yield from cons.compute(25)
            yield from slots.v(cons)

    m.spawn(producer())
    m.spawn(consumer())
    m.run()
    assert consumed == list(range(6))
    assert len(buf) == 0


def test_p_is_np_synch_v_is_cp_synch_under_bc():
    """P must not flush the write buffer; V must."""
    m = machine()
    sem = HWSemaphore(m, initial=1)
    p = m.processor(0, consistency="bc")
    observed = {}

    def w():
        for _ in range(5):
            yield from p.shared_write(m.alloc_word(), 1)
        observed["before_p"] = m.nodes[0].write_buffer.pending_count
        yield from sem.p(p)
        observed["after_p"] = m.nodes[0].write_buffer.pending_count
        yield from sem.v(p)
        observed["after_v"] = m.nodes[0].write_buffer.pending_count

    m.spawn(w())
    m.run()
    assert observed["before_p"] > 0  # writes were pending
    # V flushed before issuing (CP-Synch).
    assert observed["after_v"] == 0


def test_sem_message_costs():
    """Uncontended P/V: two messages for P (req+grant), one for V."""
    m = machine(n=4)
    sem = HWSemaphore(m, initial=1)
    p = m.processor(2)

    def w():
        yield from sem.p(p)
        yield from sem.v(p)

    m.spawn(w())
    m.run()
    assert m.net.count_of(MessageType.SEM_P) == 1
    assert m.net.count_of(MessageType.SEM_GRANT) == 1
    assert m.net.count_of(MessageType.SEM_V) == 1
    assert m.net.count_of(MessageType.SEM_ACK) == 0


def test_semaphore_as_lock_object():
    """The acquire/release aliases let a binary semaphore replace a lock."""
    m = machine()
    sem = HWSemaphore(m, initial=1)
    counter = {"v": 0}

    def w(p):
        yield from p.acquire(sem)
        counter["v"] += 1
        yield from p.compute(10)
        yield from p.release(sem)

    for i in range(4):
        m.spawn(w(m.processor(i)))
    m.run()
    assert counter["v"] == 4


def test_negative_initial_rejected():
    m = machine(n=2)
    with pytest.raises(ValueError):
        HWSemaphore(m, initial=-1)


def test_semaphores_on_all_protocols():
    for protocol in ("wbi", "primitives", "writeupdate"):
        m = machine(n=4, protocol=protocol)
        sem = HWSemaphore(m, initial=1)
        done = []

        def w(p):
            yield from sem.p(p)
            yield from p.compute(5)
            yield from sem.v(p)
            done.append(p.node_id)

        for i in range(4):
            m.spawn(w(m.processor(i)))
        m.run()
        assert len(done) == 4, protocol
