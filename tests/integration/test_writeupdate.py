"""Integration tests: the sender-initiated write-update comparator."""

import pytest

from repro import Machine, MachineConfig, TSLock, TTSLock
from repro.network import MessageType


def wu_machine(n=4, **kw):
    cfg = MachineConfig(n_nodes=n, cache_blocks=64, cache_assoc=2, **kw)
    return Machine(cfg, protocol="writeupdate")


def test_read_then_remote_write_pushes_update():
    m = wu_machine()
    addr = m.alloc_word()
    m.poke(addr, 1)
    vals = []
    p0, p1 = m.processor(0), m.processor(1)

    def reader():
        v = yield from p1.read(addr)
        vals.append(v)
        yield p1.sim.timeout(500)
        v = yield from p1.read(addr)  # updated in place, no miss
        vals.append(v)

    def writer():
        yield p0.sim.timeout(100)
        yield from p0.write(addr, 2)

    m.spawn(reader())
    m.spawn(writer())
    m.run()
    assert vals == [1, 2]
    assert m.net.count_of(MessageType.WU_UPDATE) == 1


def test_write_through_reaches_memory():
    m = wu_machine()
    addr = m.alloc_word()
    p = m.processor(0)

    def w():
        yield from p.write(addr, 9)

    m.spawn(w())
    m.run()
    assert m.peek_memory(addr) == 9


def test_second_read_is_local_hit():
    m = wu_machine()
    addr = m.alloc_word()
    p = m.processor(1)

    def w():
        yield from p.read(addr)
        before = m.net.message_count
        yield from p.read(addr)
        return m.net.message_count - before

    out = {}

    def wrap():
        out["delta"] = yield from w()

    m.spawn(wrap())
    m.run()
    assert out["delta"] == 0


def test_readers_stay_registered_forever():
    """The paper's critique: updates keep flowing to past readers."""
    m = wu_machine()
    addr = m.alloc_word()
    p0, p1 = m.processor(0), m.processor(1)

    def reader():
        yield from p1.read(addr)  # reads once, never again

    def writer():
        yield p0.sim.timeout(200)
        for k in range(5):
            yield from p0.write(addr, k)

    m.spawn(reader())
    m.spawn(writer())
    m.run()
    # All five writes pushed to the no-longer-interested reader.
    assert m.net.count_of(MessageType.WU_UPDATE) == 5


def test_eviction_deregisters_reader():
    cfg = MachineConfig(n_nodes=2, cache_blocks=4, cache_assoc=1)
    m = Machine(cfg, protocol="writeupdate")
    a0 = m.amap.word_addr(0, 0)
    a4 = m.amap.word_addr(4, 0)  # same set as block 0
    p0, p1 = m.processor(0), m.processor(1)

    def reader():
        yield from p1.read(a0)
        yield from p1.read(a4)  # evicts block 0 -> WU_EVICT

    def writer():
        yield p0.sim.timeout(500)
        yield from p0.write(a0, 7)

    m.spawn(reader())
    m.spawn(writer())
    m.run()
    assert m.net.count_of(MessageType.WU_EVICT) >= 1
    # After deregistration the write pushes to nobody.
    assert m.net.count_of(MessageType.WU_UPDATE) == 0


def test_rmw_pushes_new_value_to_sharers():
    m = wu_machine()
    addr = m.alloc_word()
    p0, p1 = m.processor(0), m.processor(1)
    vals = []

    def reader():
        yield from p1.read(addr)
        yield p1.sim.timeout(500)
        v = yield from p1.read(addr)
        vals.append(v)

    def rmw_guy():
        yield p0.sim.timeout(100)
        yield from p0.rmw(addr, "fetch_add", 5)

    m.spawn(reader())
    m.spawn(rmw_guy())
    m.run()
    assert vals == [5]


def test_spin_locks_work_on_wu_machine():
    """watch_invalidation fires on pushed updates, so TTS spins correctly."""
    m = wu_machine(n=4)
    lock = TTSLock(m)
    counter = m.alloc_word()

    def w(p):
        for _ in range(2):
            yield from p.acquire(lock)
            v = yield from p.read(counter)
            yield from p.compute(5)
            yield from p.write(counter, v + 1)
            yield from p.release(lock)

    for i in range(4):
        m.spawn(w(m.processor(i)))
    m.run()
    assert m.peek_memory(counter) == 8


def test_concurrent_rmw_serialize():
    m = wu_machine(n=8)
    addr = m.alloc_word()
    olds = []

    def f(p):
        old = yield from p.rmw(addr, "fetch_add", 1)
        olds.append(old)

    for i in range(8):
        m.spawn(f(m.processor(i)))
    m.run()
    assert sorted(olds) == list(range(8))
