"""Integration tests: cache-based locking (CBL)."""

import pytest

from repro import CBLLock, Machine, MachineConfig
from repro.network import MessageType


def machine(n=8, protocol="primitives", **kw):
    cfg = MachineConfig(n_nodes=n, cache_blocks=64, cache_assoc=2, **kw)
    return Machine(cfg, protocol=protocol)


def test_uncontended_acquire_release():
    m = machine()
    lock = CBLLock(m)
    done = []
    p = m.processor(0)

    def w():
        yield from p.acquire(lock)
        assert p.cbl.holds(lock.block)
        yield from p.release(lock)
        assert not p.cbl.holds(lock.block)
        done.append(True)

    m.spawn(w())
    m.run()
    assert done == [True]
    # Exactly: REQ + GRANT + RELEASE = 3 network messages.
    assert m.net.count_of(MessageType.LOCK_REQ_WRITE) == 1
    assert m.net.count_of(MessageType.LOCK_GRANT) == 1
    assert m.net.count_of(MessageType.LOCK_RELEASE) == 1


def test_mutual_exclusion_under_contention():
    m = machine()
    lock = CBLLock(m)
    in_cs = []
    violations = []

    def w(p):
        for _ in range(3):
            yield from p.acquire(lock)
            if in_cs:
                violations.append(p.node_id)
            in_cs.append(p.node_id)
            yield from p.compute(17)
            in_cs.pop()
            yield from p.release(lock)
            yield from p.compute(5)

    for i in range(8):
        m.spawn(w(m.processor(i)))
    m.run()
    assert violations == []


def test_lock_grant_carries_data():
    """The protected data travels with the grant (synchronization merged
    with data transfer)."""
    m = machine()
    lock = CBLLock(m)
    m.poke(m.amap.word_addr(lock.block, 0), 123)
    vals = []
    p = m.processor(2)

    def w():
        yield from p.acquire(lock)
        v = yield from lock.read_data(p, 0)
        vals.append(v)
        yield from lock.write_data(p, 0, 124)
        yield from p.release(lock)

    m.spawn(w())
    m.run()
    assert vals == [123]
    assert m.peek_memory(m.amap.word_addr(lock.block, 0)) == 124


def test_critical_section_counter_is_exact():
    """The canonical test: n workers increment a lock-protected counter."""
    m = machine()
    lock = CBLLock(m)
    addr = m.amap.word_addr(lock.block, 0)

    def w(p):
        for _ in range(4):
            yield from p.acquire(lock)
            v = yield from lock.read_data(p, 0)
            yield from p.compute(3)
            yield from lock.write_data(p, 0, v + 1)
            yield from p.release(lock)

    for i in range(8):
        m.spawn(w(m.processor(i)))
    m.run()
    assert m.peek_memory(addr) == 32


def test_waiters_generate_no_network_traffic():
    """CBL's key property: spinning is local."""
    m = machine(n=4)
    lock = CBLLock(m)
    p0, p1 = m.processor(0), m.processor(1)
    probe = {}

    def holder():
        yield from p0.acquire(lock)
        yield from p0.compute(50)
        probe["before"] = m.net.message_count
        yield from p0.compute(5000)  # long critical section
        probe["after"] = m.net.message_count
        yield from p0.release(lock)

    def waiter():
        yield p1.sim.timeout(30)
        yield from p1.acquire(lock)
        yield from p1.release(lock)

    m.spawn(holder())
    m.spawn(waiter())
    m.run()
    # While the waiter was queued (the 5000-cycle window) zero messages flowed.
    assert probe["after"] == probe["before"]


def test_read_locks_shared_concurrently():
    m = machine()
    lock = CBLLock(m)
    concurrent = []
    active = [0]

    def reader(p):
        yield from p.acquire(lock, mode="read")
        active[0] += 1
        concurrent.append(active[0])
        yield from p.compute(100)
        active[0] -= 1
        yield from p.release(lock)

    for i in range(4):
        m.spawn(reader(m.processor(i)))
    m.run()
    assert max(concurrent) > 1  # readers overlapped


def test_writer_excludes_readers():
    m = machine()
    lock = CBLLock(m)
    log = []

    def reader(p, delay):
        yield p.sim.timeout(delay)
        yield from p.acquire(lock, mode="read")
        log.append(("r-in", p.node_id))
        yield from p.compute(100)
        log.append(("r-out", p.node_id))
        yield from p.release(lock)

    def writer(p, delay):
        yield p.sim.timeout(delay)
        yield from p.acquire(lock, mode="write")
        log.append(("w-in", p.node_id))
        yield from p.compute(100)
        log.append(("w-out", p.node_id))
        yield from p.release(lock)

    m.spawn(reader(m.processor(0), 0))
    m.spawn(reader(m.processor(1), 10))
    m.spawn(writer(m.processor(2), 20))
    m.spawn(reader(m.processor(3), 30))  # queued behind the writer
    m.run()
    # The writer's critical section must not overlap anyone's.
    w_in = log.index(("w-in", 2))
    w_out = log.index(("w-out", 2))
    for i, (tag, nid) in enumerate(log):
        if nid != 2 and tag == "r-in":
            out = log.index(("r-out", nid))
            assert out < w_in or i > w_out


def test_release_of_write_lock_wakes_reader_prefix():
    """Releasing a write lock grants the maximal prefix of waiting readers."""
    m = machine()
    lock = CBLLock(m)
    granted_at = {}

    def writer(p):
        yield from p.acquire(lock, "write")
        yield from p.compute(200)
        yield from p.release(lock)

    def reader(p, delay):
        yield p.sim.timeout(delay)
        yield from p.acquire(lock, "read")
        granted_at[p.node_id] = p.sim.now
        yield from p.compute(50)
        yield from p.release(lock)

    m.spawn(writer(m.processor(0)))
    m.spawn(reader(m.processor(1), 20))
    m.spawn(reader(m.processor(2), 30))
    m.spawn(reader(m.processor(3), 40))
    m.run()
    times = sorted(granted_at.values())
    # All three readers granted in one cascade, close together.
    assert times[-1] - times[0] < 100


def test_fifo_ordering_of_write_lock_grants():
    m = machine()
    lock = CBLLock(m)
    order = []

    def w(p, delay):
        yield p.sim.timeout(delay)
        yield from p.acquire(lock)
        order.append(p.node_id)
        yield from p.compute(50)
        yield from p.release(lock)

    for i in range(6):
        m.spawn(w(m.processor(i), i * 7))
    m.run()
    assert order == [0, 1, 2, 3, 4, 5]


def test_lock_queue_mirror_matches_line_pointers():
    m = machine()
    lock = CBLLock(m)
    snapshot = {}

    def holder(p):
        yield from p.acquire(lock)
        yield from p.compute(500)
        # Snapshot while three waiters are queued.
        home = m.amap.home_of(lock.block)
        entry = m.nodes[home].directory.entry(lock.block)
        snapshot["queue"] = [item[0] for item in entry.lock_queue]
        snapshot["tail"] = entry.queue_pointer
        snapshot["lines"] = {
            nid: (m.nodes[nid].lockcache.peek(lock.block).prev,
                  m.nodes[nid].lockcache.peek(lock.block).next)
            for nid in snapshot["queue"]
            if m.nodes[nid].lockcache.peek(lock.block) is not None
        }
        yield from p.release(lock)

    def waiter(p, delay):
        yield p.sim.timeout(delay)
        yield from p.acquire(lock)
        yield from p.release(lock)

    m.spawn(holder(m.processor(0)))
    for i, d in ((1, 50), (2, 100), (3, 150)):
        m.spawn(waiter(m.processor(i), d))
    m.run()
    assert snapshot["queue"] == [0, 1, 2, 3]
    assert snapshot["tail"] == 3
    # Each queued line's prev points at its predecessor in the mirror.
    q = snapshot["queue"]
    for i, nid in enumerate(q):
        if nid in snapshot["lines"]:
            prev, nxt = snapshot["lines"][nid]
            if i > 0:
                assert prev == q[i - 1]


def test_handoff_is_two_network_transits():
    """Home-arbitrated handoff: release-in plus grant-out."""
    cfg = MachineConfig(n_nodes=4, cache_blocks=64, cache_assoc=2)
    m = Machine(cfg, protocol="primitives")
    lock = CBLLock(m)
    t = {}
    p0, p1 = m.processor(0), m.processor(1)

    def holder():
        yield from p0.acquire(lock)
        yield from p0.compute(100)
        t["released"] = p0.sim.now
        yield from p0.release(lock)

    def waiter():
        yield p1.sim.timeout(20)
        yield from p1.acquire(lock)
        t["granted"] = p1.sim.now
        yield from p1.release(lock)

    m.spawn(holder())
    m.spawn(waiter())
    m.run()
    handoff = t["granted"] - t["released"]
    # Release message + directory + memory merge + grant message; the grant
    # is a block-sized transfer.  Must be far below a WBI-style storm.
    stages = m.net.stages
    upper = 2 * stages * (1 + cfg.words_per_block) + cfg.dir_cycle + 2 * cfg.memory_cycle + 10
    assert handoff <= upper


def test_double_acquire_same_node_rejected():
    m = machine()
    lock = CBLLock(m)
    p = m.processor(0)

    def w():
        yield from p.acquire(lock)
        yield from p.acquire(lock)  # same node, same lock: error

    m.spawn(w())
    with pytest.raises(RuntimeError, match="already holds"):
        m.run()


def test_release_without_hold_rejected():
    m = machine()
    lock = CBLLock(m)
    p = m.processor(0)

    def w():
        yield from p.release(lock)

    m.spawn(w())
    with pytest.raises(RuntimeError, match="does not hold"):
        m.run()


def test_cbl_works_on_wbi_machine_too():
    m = machine(protocol="wbi")
    lock = CBLLock(m)
    addr = m.amap.word_addr(lock.block, 0)

    def w(p):
        yield from p.acquire(lock)
        v = yield from lock.read_data(p, 0)
        yield from lock.write_data(p, 0, v + 1)
        yield from p.release(lock)

    for i in range(4):
        m.spawn(w(m.processor(i)))
    m.run()
    assert m.peek_memory(addr) == 4
