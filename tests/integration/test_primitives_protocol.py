"""Integration tests: the paper machine (Table 1 primitives + read-update)."""

import pytest

from repro import Machine, MachineConfig
from repro.network import MessageType


def prim_machine(n=4, **kw):
    cfg = MachineConfig(n_nodes=n, cache_blocks=64, cache_assoc=2, **kw)
    return Machine(cfg, protocol="primitives")


def test_local_read_write_no_coherence():
    """Plain READ/WRITE maintain no coherence: another node's cached copy
    goes stale (by design)."""
    m = prim_machine()
    addr = m.alloc_word()
    m.poke(addr, 1)
    vals = []
    p0, p1 = m.processor(0), m.processor(1)

    def reader_first():
        v = yield from p1.read(addr)
        vals.append(("before", v))
        yield p1.sim.timeout(500)
        v = yield from p1.read(addr)  # still the stale cached copy
        vals.append(("after", v))

    def writer():
        yield p0.sim.timeout(100)
        yield from p0.write(addr, 2)  # local only

    m.spawn(reader_first())
    m.spawn(writer())
    m.run()
    assert vals == [("before", 1), ("after", 1)]


def test_write_global_reaches_memory():
    m = prim_machine()
    addr = m.alloc_word()
    p = m.processor(0)

    def w():
        yield from p.write_global(addr, 9)
        yield from p.flush()

    m.spawn(w())
    m.run()
    assert m.peek_memory(addr) == 9


def test_read_global_bypasses_stale_cache():
    m = prim_machine()
    addr = m.alloc_word()
    m.poke(addr, 5)
    p0, p1 = m.processor(0), m.processor(1)
    vals = []

    def reader():
        v = yield from p1.read(addr)  # caches 5
        yield p1.sim.timeout(500)
        v_cached = yield from p1.read(addr)
        v_global = yield from p1.read_global(addr)
        vals.append((v, v_cached, v_global))

    def writer():
        yield p0.sim.timeout(100)
        yield from p0.write_global(addr, 6)
        yield from p0.flush()

    m.spawn(reader())
    m.spawn(writer())
    m.run()
    assert vals == [(5, 5, 6)]


def test_write_global_does_not_stall():
    """Buffered global writes return immediately (write-buffer decoupling)."""
    m = prim_machine()
    p = m.processor(0)
    addr = m.alloc_word()
    times = []

    def w():
        t0 = p.sim.now
        for i in range(10):
            yield from p.write_global(addr + 0, i)
        times.append(p.sim.now - t0)
        yield from p.flush()
        times.append(p.sim.now - t0)

    m.spawn(w())
    m.run()
    issue_time, total_time = times
    assert issue_time <= 10 * 2  # ~1 cache cycle per buffered write
    assert total_time > issue_time  # the flush actually waited


def test_read_update_receives_future_updates():
    """The core reader-initiated coherence behaviour."""
    m = prim_machine()
    block = m.alloc_block()
    addr = m.amap.word_addr(block, 0)
    m.poke(addr, 10)
    p0, p1 = m.processor(0), m.processor(1)
    vals = []

    def subscriber():
        v = yield from p1.read_update(addr)
        vals.append(v)
        yield p1.sim.timeout(800)
        v = yield from p1.read(addr)  # plain read sees the pushed update
        vals.append(v)

    def writer():
        yield p0.sim.timeout(200)
        yield from p0.write_global(addr, 11)
        yield from p0.flush()

    m.spawn(subscriber())
    m.spawn(writer())
    m.run()
    assert vals == [10, 11]
    assert m.net.count_of(MessageType.RU_UPDATE) == 1


def test_update_propagates_down_chain_of_subscribers():
    m = prim_machine(n=8, ru_propagation="chain")
    block = m.alloc_block()
    addr = m.amap.word_addr(block, 0)
    writers_done = []
    vals = {}
    subs = [m.processor(i) for i in range(1, 6)]  # 5 subscribers
    pw = m.processor(0)

    def subscriber(p):
        yield from p.read_update(addr)
        yield p.sim.timeout(2000)
        v = yield from p.read(addr)
        vals[p.node_id] = v

    def writer():
        yield pw.sim.timeout(500)
        yield from pw.write_global(addr, 42)
        yield from pw.flush()
        writers_done.append(pw.sim.now)

    for p in subs:
        m.spawn(subscriber(p))
    m.spawn(writer())
    m.run()
    assert all(v == 42 for v in vals.values())
    # One RU_UPDATE to the head + forwards down the chain + final ack home.
    assert m.net.count_of(MessageType.RU_UPDATE) == 1
    assert m.net.count_of(MessageType.RU_UPDATE_FWD) == 4
    assert m.net.count_of(MessageType.RU_ACK) == 1


def test_update_multicast_fans_out_from_home():
    """Default propagation: one parallel update per subscriber from home
    (Table 2's (n-1)||C_B), each acked under strict mode."""
    m = prim_machine(n=8, ru_propagation="multicast")
    block = m.alloc_block()
    addr = m.amap.word_addr(block, 0)
    vals = {}
    subs = [m.processor(i) for i in range(1, 6)]
    pw = m.processor(0)

    def subscriber(p):
        yield from p.read_update(addr)
        yield p.sim.timeout(2000)
        v = yield from p.read(addr)
        vals[p.node_id] = v

    def writer():
        yield pw.sim.timeout(500)
        yield from pw.write_global(addr, 42)
        yield from pw.flush()

    for p in subs:
        m.spawn(subscriber(p))
    m.spawn(writer())
    m.run()
    assert all(v == 42 for v in vals.values())
    assert m.net.count_of(MessageType.RU_UPDATE) == 5
    assert m.net.count_of(MessageType.RU_UPDATE_FWD) == 0
    assert m.net.count_of(MessageType.RU_ACK) == 5


def test_multicast_faster_than_chain_for_many_subscribers():
    def completion(mode):
        m = prim_machine(n=16, ru_propagation=mode)
        block = m.alloc_block()
        addr = m.amap.word_addr(block, 0)
        pw = m.processor(0)

        def subscriber(p):
            yield from p.read_update(addr)

        def writer():
            yield pw.sim.timeout(500)
            yield from pw.write_global(addr, 1)
            yield from pw.flush()
            return pw.sim.now

        for i in range(1, 16):
            m.spawn(subscriber(m.processor(i)))
        m.spawn(writer())
        m.run()
        return m.sim.now

    assert completion("multicast") < completion("chain")


def test_strict_global_ack_waits_for_propagation():
    """With strict acks the writer's flush covers subscriber delivery."""
    m = prim_machine(strict_global_ack=True)
    block = m.alloc_block()
    addr = m.amap.word_addr(block, 0)
    p0, p1 = m.processor(0), m.processor(1)
    order = []

    def subscriber():
        yield from p1.read_update(addr)
        order.append(("subscribed", p1.sim.now))

    def writer():
        yield p0.sim.timeout(300)
        yield from p0.write_global(addr, 1)
        yield from p0.flush()
        # After a strict flush, the subscriber's line must already be fresh.
        line = m.nodes[1].cache.peek(block)
        order.append(("flushed", line.data[0]))

    m.spawn(subscriber())
    m.spawn(writer())
    m.run()
    assert ("flushed", 1) in order


def test_reset_update_stops_updates():
    m = prim_machine()
    block = m.alloc_block()
    addr = m.amap.word_addr(block, 0)
    p0, p1 = m.processor(0), m.processor(1)
    vals = []

    def subscriber():
        yield from p1.read_update(addr)
        yield from p1.reset_update(addr)
        yield p1.sim.timeout(1000)
        v = yield from p1.read(addr)  # stale: no update received
        vals.append(v)

    def writer():
        yield p0.sim.timeout(500)
        yield from p0.write_global(addr, 33)
        yield from p0.flush()

    m.spawn(subscriber())
    m.spawn(writer())
    m.run()
    assert vals == [0]
    assert m.net.count_of(MessageType.RU_UPDATE) == 0


def test_subscriber_list_mirror_and_pointers():
    """Home mirror and distributed prev/next pointers stay consistent."""
    m = prim_machine(n=8)
    block = m.alloc_block()
    addr = m.amap.word_addr(block, 0)
    ids = [3, 5, 6]

    def subscriber(p, delay):
        yield p.sim.timeout(delay)
        yield from p.read_update(addr)

    for i, nid in enumerate(ids):
        m.spawn(subscriber(m.processor(nid), i * 100))
    m.run()
    home = m.amap.home_of(block)
    entry = m.nodes[home].directory.entry(block)
    # Subscribers prepend: mirror is reverse arrival order.
    assert entry.ru_subscribers == [6, 5, 3]
    # Distributed pointers match the mirror.
    order = entry.ru_subscribers
    for i, nid in enumerate(order):
        line = m.nodes[nid].cache.peek(block)
        assert line is not None and line.update
        assert line.prev == (order[i - 1] if i > 0 else None)
        assert line.next == (order[i + 1] if i + 1 < len(order) else None)


def test_per_word_dirty_bits_prevent_lost_update():
    """Two nodes locally write different words of one block; both survive
    write-back (the per-word dirty-bit mechanism, Section 3 item 6)."""
    cfg = MachineConfig(n_nodes=2, cache_blocks=4, cache_assoc=1)
    m = Machine(cfg, protocol="primitives")
    block = 0
    a0 = m.amap.word_addr(block, 0)
    a1 = m.amap.word_addr(block, 1)
    evict_addr = m.amap.word_addr(4, 0)  # same set as block 0

    def writer(p, addr, value):
        yield from p.write(addr, value)
        # Force the dirty line out (same cache set).
        yield from p.read(evict_addr)

    m.spawn(writer(m.processor(0), a0, 100))
    m.spawn(writer(m.processor(1), a1, 200))
    m.run()
    assert m.peek_memory(a0) == 100
    assert m.peek_memory(a1) == 200


def test_writer_sees_own_global_write_locally():
    m = prim_machine()
    addr = m.alloc_word()
    p = m.processor(0)
    vals = []

    def w():
        yield from p.read(addr)  # cache the block
        yield from p.write_global(addr, 8)
        v = yield from p.read(addr)  # local copy refreshed
        vals.append(v)
        yield from p.flush()

    m.spawn(w())
    m.run()
    assert vals == [8]


def test_rmw_on_primitives_machine():
    m = prim_machine()
    addr = m.alloc_word()
    results = []

    def f(p):
        old = yield from p.rmw(addr, "fetch_add", 1)
        results.append(old)

    for i in range(4):
        m.spawn(f(m.processor(i)))
    m.run()
    assert sorted(results) == [0, 1, 2, 3]


def test_ru_and_lock_mutually_exclusive():
    m = prim_machine()
    block = m.alloc_block()
    addr = m.amap.word_addr(block, 0)
    p0, p1 = m.processor(0), m.processor(1)

    def subscriber():
        yield from p0.read_update(addr)

    def locker():
        yield p1.sim.timeout(200)
        yield from p1.cbl.acquire(block, "write")

    m.spawn(subscriber())
    m.spawn(locker())
    with pytest.raises(RuntimeError, match="mutually exclusive"):
        m.run()
