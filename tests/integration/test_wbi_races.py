"""Race-path tests for the WBI protocol: transactions that interleave at
the home directory and must resolve through the degraded/stale paths."""

import pytest

from repro import Machine, MachineConfig
from repro.network import MessageType
from repro.verify import check_all


def machine(n=4):
    cfg = MachineConfig(n_nodes=n, cache_blocks=64, cache_assoc=2)
    return Machine(cfg, protocol="wbi")


def test_upgrade_degrades_to_write_miss_when_copy_lost():
    """P0 upgrades a SHARED copy while P1's WRITE_MISS invalidates it: the
    home must answer P0's upgrade with fresh exclusive data, and both
    writes must serialize without loss."""
    m = machine()
    addr = m.alloc_word()
    p0, p1 = m.processor(0), m.processor(1)
    done = []

    def sharer_then_upgrader():
        yield from p0.read(addr)  # SHARED at node 0
        # Issue the upgrade just after P1's write miss is sent but before
        # the resulting INV can arrive (absolute-time anchored).
        yield p0.sim.timeout(201 - p0.sim.now)
        yield from p0.write(addr, 100)  # UPGRADE in flight during the INV
        done.append("p0")

    def overtaking_writer():
        yield p1.sim.timeout(200 - p1.sim.now)
        yield from p1.write(addr, 200)
        done.append("p1")

    m.spawn(sharer_then_upgrader())
    m.spawn(overtaking_writer())
    m.run()
    assert sorted(done) == ["p0", "p1"]
    check_all(m)
    # The upgrade was answered with data (degraded path), not a pure ack.
    assert m.net.count_of(MessageType.UPGRADE) == 1
    assert m.net.count_of(MessageType.UPGRADE_ACK) == 0
    assert m.net.count_of(MessageType.DATA_BLOCK_EXCL) == 2
    # P0's write serialized after P1's: its value survives in its cache.
    line = m.nodes[0].cache.peek(m.amap.block_of(addr))
    assert line is not None and line.data[m.amap.offset_of(addr)] == 100


def test_concurrent_upgrades_one_degrades():
    """Two sharers upgrade simultaneously: one wins a pure upgrade, the
    other is invalidated and degraded to a data response."""
    m = machine()
    addr = m.alloc_word()
    p0, p1 = m.processor(0), m.processor(1)

    def w(p, value):
        yield from p.read(addr)
        yield p.sim.timeout(200 - p.sim.now)  # both upgrade at the same instant
        yield from p.write(addr, value)

    m.spawn(w(p0, 111))
    m.spawn(w(p1, 222))
    m.run()
    check_all(m)
    assert m.net.count_of(MessageType.UPGRADE) == 2
    assert m.net.count_of(MessageType.UPGRADE_ACK) == 1
    assert m.net.count_of(MessageType.DATA_BLOCK_EXCL) == 1
    # Exactly one final owner, holding the serialized-last value.
    owners = [
        nid
        for nid in range(4)
        if (l := m.nodes[nid].cache.peek(m.amap.block_of(addr))) is not None and l.valid
    ]
    assert len(owners) == 1


def test_stale_writeback_discarded():
    """A WRITEBACK that raced with a FETCH the owner already answered is
    recognized as stale and acked without corrupting memory."""
    cfg = MachineConfig(n_nodes=2, cache_blocks=4, cache_assoc=1)
    m = Machine(cfg, protocol="wbi")
    addr0 = m.amap.word_addr(0, 0)
    addr4 = m.amap.word_addr(4, 0)  # conflicts with block 0
    p0, p1 = m.processor(0), m.processor(1)

    def owner():
        yield from p0.write(addr0, 77)  # dirty exclusive at node 0
        yield p0.sim.timeout(100)
        # Evicting block 0 (writeback) races with p1's read miss below.
        yield from p0.read(addr4)

    def reader():
        yield p1.sim.timeout(100)
        v = yield from p1.read(addr0)
        assert v == 77  # the dirty value must never be lost

    m.spawn(owner())
    m.spawn(reader())
    m.run()
    check_all(m)
    assert m.peek_memory(addr0) == 77


def test_rmw_storm_on_contended_block_stays_coherent():
    """Many RMWs + reads + writes on one block: every path through the
    directory (recall, invalidate, defer) fires; invariants hold."""
    m = machine(n=8)
    addr = m.alloc_word()

    def w(p):
        for k in range(4):
            yield from p.rmw(addr, "fetch_add", 1)
            v = yield from p.read(addr)
            assert v >= 1
            yield from p.write(addr + 1, p.node_id)  # same block, other word

    for i in range(8):
        m.spawn(w(m.processor(i)))
    m.run()
    check_all(m)
    # fetch_adds all landed (reads/writes may have raced, adds may not).
    final = []

    def check(p):
        v = yield from p.read(addr)
        final.append(v)

    m.spawn(check(m.processor(0)))
    m.run()
    assert final == [32]
