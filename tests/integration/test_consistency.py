"""Integration tests: SC vs BC vs WO vs RC on the primitives machine."""

import pytest

from repro import CBLLock, HWBarrier, Machine, MachineConfig
from repro.consistency import get_model
from repro.network import MessageType


def machine(n=4, **kw):
    cfg = MachineConfig(n_nodes=n, cache_blocks=64, cache_assoc=2, **kw)
    return Machine(cfg, protocol="primitives")


def test_get_model_names():
    assert get_model("sc").name == "sc"
    assert get_model("bc").name == "bc"
    assert get_model("wo").name == "wo"
    assert get_model("rc").name == "rc"
    with pytest.raises(ValueError):
        get_model("tso")


def test_sc_stalls_each_shared_write():
    m = machine()
    p = m.processor(0, consistency="sc")
    addrs = [m.alloc_word() for _ in range(5)]
    elapsed = {}

    def w():
        t0 = p.sim.now
        for a in addrs:
            yield from p.shared_write(a, 1)
        elapsed["t"] = p.sim.now - t0
        assert m.nodes[0].write_buffer.pending_count == 0

    m.spawn(w())
    m.run()
    # Each write waits for a full network round trip: >> 5 cycles.
    assert elapsed["t"] >= 5 * 4


def test_bc_overlaps_shared_writes():
    def issue_time(consistency):
        m = machine()
        p = m.processor(0, consistency=consistency)
        addrs = [m.alloc_word() for _ in range(10)]
        out = {}

        def w():
            t0 = p.sim.now
            for a in addrs:
                yield from p.shared_write(a, 1)
            out["issue"] = p.sim.now - t0
            yield from p.flush()
            out["total"] = p.sim.now - t0

        m.spawn(w())
        m.run()
        return out

    sc = issue_time("sc")
    bc = issue_time("bc")
    assert bc["issue"] < sc["issue"] / 2  # BC issues without stalling
    assert bc["total"] <= sc["total"]  # and overall no slower


def test_bc_flushes_before_release():
    """Writes inside the critical section must be globally performed before
    the lock is handed to the next holder."""
    m = machine()
    lock = CBLLock(m)
    data = m.alloc_word()
    seen = []
    p0 = m.processor(0, consistency="bc")
    p1 = m.processor(1, consistency="bc")

    def writer():
        yield from p0.acquire(lock)
        yield from p0.shared_write(data, 55)  # buffered
        yield from p0.release(lock)  # CP-Synch: flush first

    def reader():
        yield p1.sim.timeout(10)
        yield from p1.acquire(lock)
        v = yield from p1.read_global(data)  # memory must have it
        seen.append(v)
        yield from p1.release(lock)

    m.spawn(writer())
    m.spawn(reader())
    m.run()
    assert seen == [55]


def test_bc_acquire_does_not_flush():
    """NP-Synch: a lock acquire proceeds with writes still pending."""
    m = machine()
    lock = CBLLock(m)
    p = m.processor(0, consistency="bc")
    pending_at_acquire = []

    def w():
        for _ in range(5):
            yield from p.shared_write(m.alloc_word(), 1)
        pending_at_acquire.append(m.nodes[0].write_buffer.pending_count)
        yield from p.acquire(lock)
        pending_at_acquire.append(m.nodes[0].write_buffer.pending_count)
        yield from p.release(lock)

    m.spawn(w())
    m.run()
    # Writes were still in flight when the acquire was issued.
    assert pending_at_acquire[0] > 0


def test_wo_flushes_before_acquire():
    m = machine()
    lock = CBLLock(m)
    p = m.processor(0, consistency="wo")
    pending = []

    def w():
        for _ in range(5):
            yield from p.shared_write(m.alloc_word(), 1)
        yield from p.acquire(lock)
        pending.append(m.nodes[0].write_buffer.pending_count)
        yield from p.release(lock)

    m.spawn(w())
    m.run()
    assert pending == [0]  # drained before the acquire completed


def test_rc_and_wo_release_waits_for_ack():
    for name in ("rc", "wo"):
        m = machine()
        lock = CBLLock(m)
        p = m.processor(0, consistency=name)

        def w():
            yield from p.acquire(lock)
            yield from p.release(lock)

        m.spawn(w())
        m.run()
        assert m.net.count_of(MessageType.QUEUE_ACK) == 1, name


def test_bc_release_is_fire_and_forget():
    m = machine()
    lock = CBLLock(m)
    p = m.processor(0, consistency="bc")

    def w():
        yield from p.acquire(lock)
        yield from p.release(lock)

    m.spawn(w())
    m.run()
    assert m.net.count_of(MessageType.QUEUE_ACK) == 0


def test_bc_barrier_flushes_first():
    m = machine()
    bar = HWBarrier(m, n=2)
    data = m.alloc_word()
    seen = []
    p0 = m.processor(0, consistency="bc")
    p1 = m.processor(1, consistency="bc")

    def writer():
        yield from p0.shared_write(data, 7)
        yield from p0.barrier(bar)

    def reader():
        yield from p1.barrier(bar)
        v = yield from p1.read_global(data)
        seen.append(v)

    m.spawn(writer())
    m.spawn(reader())
    m.run()
    assert seen == [7]


def test_bc_faster_than_sc_for_write_heavy_critical_sections():
    """The Figure 6/7 effect in miniature."""

    def completion(consistency):
        m = machine()
        lock = CBLLock(m)
        data = [m.alloc_word() for _ in range(8)]

        def w(p):
            for _ in range(3):
                yield from p.acquire(lock)
                for a in data:
                    yield from p.shared_write(a, p.node_id)
                yield from p.release(lock)
                yield from p.compute(20)

        for i in range(4):
            m.spawn(w(m.processor(i, consistency=consistency)))
        m.run()
        return m.sim.now

    assert completion("bc") < completion("sc")


def test_models_on_wbi_machine_fall_back_to_coherent_writes():
    cfg = MachineConfig(n_nodes=2, cache_blocks=64, cache_assoc=2)
    m = Machine(cfg, protocol="wbi")
    addr = m.alloc_word()
    p = m.processor(0, consistency="bc")

    def w():
        yield from p.shared_write(addr, 3)

    m.spawn(w())
    m.run()
    # No write buffer on WBI machines; the write went through coherently.
    assert m.nodes[0].write_buffer is None
    assert m.nodes[0].cache.peek(m.amap.block_of(addr)).data[0] == 3
