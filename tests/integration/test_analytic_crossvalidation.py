"""Cross-validation: the Table 3 closed forms against the simulator.

The analytic model and the simulator were built independently (closed
forms transcribed from the paper vs a message-level machine); these tests
tie them together by instantiating the analytic time parameters with this
simulator's actual constants and checking the predictions.
"""

import pytest

from repro import CBLLock, HWBarrier, Machine, MachineConfig
from repro.analysis import TimeParams, table3_entry


def machine(n=4):
    cfg = MachineConfig(n_nodes=n, cache_blocks=64, cache_assoc=2)
    return Machine(cfg, protocol="primitives"), cfg


def simulator_time_params(m, cfg, t_cs):
    """Table 3's constants expressed in this machine's terms.

    ``t_nw``: one network transit of a typical lock message.  Requests are
    1 flit, grants are block-sized (1+B flits); use their mean.
    """
    stages = m.net.stages
    t_req = stages * cfg.switch_cycle * 1
    t_grant = stages * cfg.switch_cycle * (1 + cfg.words_per_block)
    return TimeParams(
        t_nw=(t_req + t_grant) / 2,
        t_cs=t_cs,
        t_d=cfg.dir_cycle,
        t_m=cfg.memory_cycle,
    )


def test_serial_lock_time_matches_formula():
    """CBL serial lock: 3 t_nw + t_D + t_cs, within modeling slack."""
    t_cs = 50
    m, cfg = machine()
    lock = CBLLock(m)
    p = m.processor(0)
    marks = {}

    def w():
        marks["t0"] = p.sim.now
        yield from p.acquire(lock)
        yield from p.compute(t_cs)
        yield from p.release(lock)
        marks["t1"] = p.sim.now

    m.spawn(w())
    m.run()
    measured = marks["t1"] - marks["t0"]
    predicted = table3_entry(
        "cbl", "serial_lock", 1, simulator_time_params(m, cfg, t_cs)
    ).time
    # The formula omits the memory read on grant and our cache-cycle
    # charges; demand agreement within 20%.
    assert measured == pytest.approx(predicted, rel=0.2)


@pytest.mark.parametrize("n", [4, 8, 16])
def test_parallel_lock_time_is_linear_as_predicted(n):
    """CBL parallel lock: time ≈ n·t_cs + (2n+1)·t_nw + ... — linear in n.
    Check both the linearity and the absolute prediction."""
    t_cs = 50
    m, cfg = machine(n)
    lock = CBLLock(m)

    def w(p):
        yield from p.acquire(lock)
        yield from p.compute(t_cs)
        yield from p.release(lock)

    for i in range(n):
        m.spawn(w(m.processor(i)))
    m.run()
    measured = m.sim.now
    predicted = table3_entry(
        "cbl", "parallel_lock", n, simulator_time_params(m, cfg, t_cs)
    ).time
    assert measured == pytest.approx(predicted, rel=0.35)


def test_parallel_lock_messages_match_formula_exactly():
    """CBL parallel-lock message count: exactly 6n-3 (REQ + FWD + WAIT +
    GRANT + RELEASE + splice chaining)."""
    for n in (2, 4, 8, 16):
        m, cfg = machine(n)
        lock = CBLLock(m)

        def w(p):
            yield from p.acquire(lock)
            yield from p.compute(50)
            yield from p.release(lock)

        for i in range(n):
            m.spawn(w(m.processor(i)))
        m.run()
        assert m.net.message_count == 6 * n - 3, n


def test_barrier_notify_messages_match():
    """Hardware barrier: 2 messages per arrival plus n releases (3n)."""
    for n in (4, 8):
        m, cfg = machine(n)
        bar = HWBarrier(m, n=n)

        def w(p):
            yield from p.barrier(bar)

        for i in range(n):
            m.spawn(w(m.processor(i)))
        m.run()
        assert m.net.message_count == 3 * n, n


def test_barrier_request_time_matches_formula():
    """One barrier arrival (non-last): 2(t_nw + t_m) round trip for the
    arrive+ack leg (control-sized messages)."""
    n = 4
    m, cfg = machine(n)
    bar = HWBarrier(m, n=n)
    marks = {}

    def first(p):
        t0 = p.sim.now
        yield from p.barrier(bar)
        # Can't observe the ack leg alone from here; measured below via
        # message latencies instead.

    def others(p):
        yield p.sim.timeout(500)
        yield from p.barrier(bar)

    m.spawn(first(m.processor(0)))
    for i in range(1, n):
        m.spawn(others(m.processor(i)))
    m.run()
    # arrive (t_nw) + t_D + t_m + ack (t_nw): compare against the mean
    # network latency of the barrier control messages.
    stages = m.net.stages
    t_nw_ctrl = stages * cfg.switch_cycle
    predicted_leg = 2 * t_nw_ctrl + cfg.dir_cycle + cfg.memory_cycle
    # The paper's 2(t_nw + t_m) uses the same structure; sanity-band check.
    assert predicted_leg == pytest.approx(2 * (t_nw_ctrl + cfg.memory_cycle), rel=0.5)
