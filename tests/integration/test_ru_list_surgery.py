"""Detailed READ-UPDATE subscriber-list maintenance: splices at every
position, re-subscription, interleaved writes, and home deferral."""

import pytest

from repro import Machine, MachineConfig
from repro.network import MessageType
from repro.verify import check_ru_lists


def setup_subscribers(node_ids, n=8):
    cfg = MachineConfig(n_nodes=n, cache_blocks=64, cache_assoc=2)
    m = Machine(cfg, protocol="primitives")
    block = m.alloc_block()
    addr = m.amap.word_addr(block, 0)

    def sub(p, delay):
        yield p.sim.timeout(delay)
        yield from p.read_update(addr)

    for i, nid in enumerate(node_ids):
        m.spawn(sub(m.processor(nid), i * 100))
    m.run()
    return m, block, addr


def entry_of(m, block):
    return m.nodes[m.amap.home_of(block)].directory.entry(block)


@pytest.mark.parametrize("position", [0, 1, 2])  # head, middle, tail of [3,2,1]
def test_unsubscribe_each_position(position):
    m, block, addr = setup_subscribers([1, 2, 3])
    # Mirror is reverse arrival order: [3, 2, 1].
    order = entry_of(m, block).ru_subscribers
    leaver = order[position]
    p = m.processor(leaver)

    def w():
        yield from p.reset_update(addr)

    m.spawn(w())
    m.run()
    remaining = entry_of(m, block).ru_subscribers
    assert leaver not in remaining
    assert len(remaining) == 2
    check_ru_lists(m)  # pointers spliced consistently


def test_unsubscribe_last_subscriber_clears_usage():
    from repro.memory.directory import Usage

    m, block, addr = setup_subscribers([5])
    p = m.processor(5)

    def w():
        yield from p.reset_update(addr)

    m.spawn(w())
    m.run()
    entry = entry_of(m, block)
    assert entry.ru_subscribers == []
    assert entry.usage is Usage.NONE
    assert entry.queue_pointer is None


def test_resubscribe_after_unsubscribe():
    m, block, addr = setup_subscribers([1, 2])
    p = m.processor(1)
    got = []

    def w():
        yield from p.reset_update(addr)
        v = yield from p.read_update(addr)
        got.append(v)

    def writer():
        pw = m.processor(0)
        yield pw.sim.timeout(2000)
        yield from pw.write_global(addr, 77)
        yield from pw.flush()

    m.spawn(w())
    m.spawn(writer())
    m.run()
    check_ru_lists(m)
    # Node 1 re-subscribed, so the update reached it.
    assert m.nodes[1].cache.peek(block).data[0] == 77


def test_writes_interleaved_with_splices_stay_consistent():
    """Global writes and unsubscribes to the same block serialize at the
    home busy bit; the survivors always hold the latest value."""
    m, block, addr = setup_subscribers([1, 2, 3, 4])
    pw = m.processor(0)
    p2 = m.processor(2)

    def writer():
        for k in range(1, 6):
            yield from pw.write_global(addr, k)
        yield from pw.flush()

    def leaver():
        yield p2.sim.timeout(30)  # mid-write-stream
        yield from p2.reset_update(addr)

    m.spawn(writer())
    m.spawn(leaver())
    m.run()
    check_ru_lists(m)
    for nid in (1, 3, 4):
        assert m.nodes[nid].cache.peek(block).data[0] == 5, nid
    assert 2 not in entry_of(m, block).ru_subscribers


def test_deferred_subscriptions_fifo():
    """Simultaneous RU_REQs defer behind the busy bit and replay in order:
    the mirror ends in exact reverse-arrival order."""
    cfg = MachineConfig(n_nodes=8, cache_blocks=64, cache_assoc=2)
    m = Machine(cfg, protocol="primitives")
    block = m.alloc_block()
    addr = m.amap.word_addr(block, 0)

    def sub(p):
        yield from p.read_update(addr)

    for nid in (1, 2, 3, 4, 5):
        m.spawn(sub(m.processor(nid)))  # all at t=0
    m.run()
    subs = entry_of(m, block).ru_subscribers
    assert sorted(subs) == [1, 2, 3, 4, 5]
    check_ru_lists(m)
    # FIFO deferral => node 1's request processed first => it is deepest.
    assert subs[-1] == 1


def test_chain_mode_list_surgery():
    """The chain propagation mode maintains the same list invariants."""
    cfg = MachineConfig(
        n_nodes=8, cache_blocks=64, cache_assoc=2, ru_propagation="chain"
    )
    m = Machine(cfg, protocol="primitives")
    block = m.alloc_block()
    addr = m.amap.word_addr(block, 0)

    def sub(p, d):
        yield p.sim.timeout(d)
        yield from p.read_update(addr)

    def leave_then_write():
        p3 = m.processor(3)
        yield p3.sim.timeout(400)
        yield from p3.reset_update(addr)
        pw = m.processor(0)
        yield from pw.write_global(addr, 9)
        yield from pw.flush()

    for i, nid in enumerate((1, 3, 5)):
        m.spawn(sub(m.processor(nid), i * 100))
    m.spawn(leave_then_write())
    m.run()
    check_ru_lists(m)
    assert m.nodes[1].cache.peek(block).data[0] == 9
    assert m.nodes[5].cache.peek(block).data[0] == 9
    assert m.nodes[3].cache.peek(block).data[0] == 0  # unsubscribed first
