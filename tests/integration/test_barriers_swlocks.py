"""Integration tests: hardware barrier, software locks, software barrier."""

import pytest

from repro import (
    HWBarrier,
    Machine,
    MachineConfig,
    MCSLock,
    SWBarrier,
    TicketLock,
    TSLock,
    TTSBackoffLock,
    TTSLock,
)
from repro.network import MessageType


def machine(n=8, protocol="wbi", **kw):
    cfg = MachineConfig(n_nodes=n, cache_blocks=64, cache_assoc=2, **kw)
    return Machine(cfg, protocol=protocol)


# ----------------------------------------------------------------- barrier


def test_hw_barrier_releases_all_together():
    m = machine(protocol="primitives")
    bar = HWBarrier(m, n=8)
    released = []

    def w(p, delay):
        yield p.sim.timeout(delay)
        yield from p.barrier(bar)
        released.append((p.node_id, p.sim.now))

    for i in range(8):
        m.spawn(w(m.processor(i), i * 50))
    m.run()
    assert len(released) == 8
    times = [t for _n, t in released]
    # Nobody is released before the last arrival at t=350.
    assert min(times) >= 350
    assert max(times) - min(times) < 50  # fan-out is tight


def test_hw_barrier_message_counts():
    """Table 3 shape: 2 messages per arrival + n release messages."""
    m = machine(n=4, protocol="primitives")
    bar = HWBarrier(m, n=4)

    def w(p):
        yield from p.barrier(bar)

    for i in range(4):
        m.spawn(w(m.processor(i)))
    m.run()
    assert m.net.count_of(MessageType.BARRIER_ARRIVE) == 4
    assert m.net.count_of(MessageType.BARRIER_ACK) == 4
    assert m.net.count_of(MessageType.BARRIER_RELEASE) == 4


def test_hw_barrier_reusable_across_phases():
    m = machine(n=4, protocol="primitives")
    bar = HWBarrier(m, n=4)
    phases = {i: [] for i in range(4)}

    def w(p):
        for phase in range(3):
            yield from p.compute((p.node_id + 1) * 10)
            yield from p.barrier(bar)
            phases[p.node_id].append(p.sim.now)

    for i in range(4):
        m.spawn(w(m.processor(i)))
    m.run()
    for phase in range(3):
        ts = [phases[i][phase] for i in range(4)]
        assert max(ts) - min(ts) < 20  # everyone leaves each phase together


# ----------------------------------------------------------------- software locks


@pytest.mark.parametrize("lock_cls", [TSLock, TTSLock, TTSBackoffLock, TicketLock, MCSLock])
def test_software_lock_mutual_exclusion(lock_cls):
    m = machine()
    lock = lock_cls(m)
    shared = m.alloc_word()
    in_cs = []
    violations = []

    def w(p):
        for _ in range(2):
            yield from p.acquire(lock)
            if in_cs:
                violations.append(p.node_id)
            in_cs.append(p.node_id)
            v = yield from p.read(shared)
            yield from p.compute(5)
            yield from p.write(shared, v + 1)
            in_cs.pop()
            yield from p.release(lock)

    for i in range(6):
        m.spawn(w(m.processor(i)))
    m.run()
    assert violations == []
    # The counter survives: read it coherently through a fresh processor.
    final = []

    def check(p):
        v = yield from p.read(shared)
        final.append(v)

    m.spawn(check(m.processor(7)))
    m.run()
    assert final == [12]


def test_ticket_lock_fifo():
    m = machine()
    lock = TicketLock(m)
    order = []

    def w(p, delay):
        yield p.sim.timeout(delay)
        yield from p.acquire(lock)
        order.append(p.node_id)
        yield from p.compute(40)
        yield from p.release(lock)

    for i in range(5):
        m.spawn(w(m.processor(i), i * 100))
    m.run()
    assert order == [0, 1, 2, 3, 4]


def test_tts_spin_waits_on_invalidation_not_polling():
    """While the lock is held, TTS spinners sit on their cached copy: no
    network traffic beyond the initial probe+read."""
    m = machine(n=4)
    lock = TTSLock(m)
    probe = {}
    p0, p1 = m.processor(0), m.processor(1)

    def holder():
        yield from p0.acquire(lock)
        yield from p0.compute(200)  # let the waiter settle into its spin
        probe["before"] = m.net.message_count
        yield from p0.compute(5000)
        probe["after"] = m.net.message_count
        yield from p0.release(lock)

    def waiter():
        yield p1.sim.timeout(50)
        yield from p1.acquire(lock)
        yield from p1.release(lock)

    m.spawn(holder())
    m.spawn(waiter())
    m.run()
    assert probe["after"] == probe["before"]


def test_ts_spin_floods_network():
    """Naive test-and-set probes continuously (the hot-spot behaviour)."""
    m = machine(n=4)
    lock = TSLock(m)
    probe = {}
    p0, p1 = m.processor(0), m.processor(1)

    def holder():
        yield from p0.acquire(lock)
        yield from p0.compute(200)
        probe["before"] = m.net.count_of(MessageType.RMW_REQ)
        yield from p0.compute(3000)
        probe["after"] = m.net.count_of(MessageType.RMW_REQ)
        yield from p0.release(lock)

    def waiter():
        yield p1.sim.timeout(50)
        yield from p1.acquire(lock)
        yield from p1.release(lock)

    m.spawn(holder())
    m.spawn(waiter())
    m.run()
    assert probe["after"] - probe["before"] > 10  # many probes in the window


def test_backoff_reduces_probe_traffic_vs_ts():
    def probes(lock_cls):
        m = machine(n=8)
        lock = lock_cls(m)

        def w(p):
            yield from p.acquire(lock)
            yield from p.compute(300)
            yield from p.release(lock)

        for i in range(8):
            m.spawn(w(m.processor(i)))
        m.run()
        return m.net.count_of(MessageType.RMW_REQ)

    assert probes(TTSBackoffLock) < probes(TSLock)


def test_release_invalidation_storm_under_tts():
    """When a TTS lock is released, all spinners' copies are invalidated."""
    m = machine(n=8)
    lock = TTSLock(m)

    def w(p):
        yield from p.acquire(lock)
        yield from p.compute(100)
        yield from p.release(lock)

    for i in range(8):
        m.spawn(w(m.processor(i)))
    m.run()
    # Releases repeatedly invalidate the spinning copies.
    assert m.net.count_of(MessageType.INV) >= 7


def test_sw_barrier_releases_everyone():
    m = machine(n=4)
    bar = SWBarrier(m, n=4)
    out = []

    def w(p, d):
        yield p.sim.timeout(d)
        yield from bar.wait(p)
        out.append((p.node_id, p.sim.now))

    for i in range(4):
        m.spawn(w(m.processor(i), i * 30))
    m.run()
    assert len(out) == 4
    assert min(t for _n, t in out) >= 90  # not before the last arrival


def test_sw_barrier_reusable():
    m = machine(n=4)
    bar = SWBarrier(m, n=4)
    counts = []

    def w(p):
        for _ in range(2):
            yield from bar.wait(p)
        counts.append(p.node_id)

    for i in range(4):
        m.spawn(w(m.processor(i)))
    m.run()
    assert sorted(counts) == [0, 1, 2, 3]


def test_spin_locks_rejected_on_primitives_machine():
    m = machine(protocol="primitives")
    lock = TTSLock(m)
    p = m.processor(0)

    def w():
        yield from p.acquire(lock)

    m.spawn(w())
    with pytest.raises(RuntimeError, match="invalidation-based coherence"):
        m.run()


def test_software_locks_exclusive_only():
    m = machine()
    lock = TSLock(m)
    p = m.processor(0)

    def w():
        yield from p.acquire(lock, mode="read")

    m.spawn(w())
    with pytest.raises(ValueError, match="exclusive-only"):
        m.run()
