"""Edge cases: lock-cache exhaustion, deferred-transaction ordering,
concurrent mixed traffic, and cross-protocol solver extension."""

import pytest

from repro import CBLLock, HWBarrier, Machine, MachineConfig
from repro.cache import LockCacheFullError
from repro.workloads import run_linsolver


def machine(n=4, protocol="primitives", **kw):
    cfg = MachineConfig(n_nodes=n, cache_blocks=64, cache_assoc=2, **kw)
    return Machine(cfg, protocol=protocol)


def test_lock_cache_exhaustion_surfaces():
    """Holding more locks than the lock cache can pin is a compile-time
    resource violation in the paper; we surface it as an explicit error."""
    m = machine(lock_cache_size=2)
    locks = [CBLLock(m) for _ in range(3)]
    p = m.processor(0)

    def w():
        for lock in locks:  # hold all three at once
            yield from p.acquire(lock)

    m.spawn(w())
    with pytest.raises(LockCacheFullError):
        m.run()


def test_lock_cache_reuse_after_release():
    """Sequential acquire/release cycles never exhaust the lock cache."""
    m = machine(lock_cache_size=2)
    locks = [CBLLock(m) for _ in range(6)]
    p = m.processor(0)
    done = []

    def w():
        for lock in locks:
            yield from p.acquire(lock)
            yield from p.release(lock)
        done.append(True)

    m.spawn(w())
    m.run()
    assert done == [True]


def test_deferred_requests_replay_in_arrival_order():
    """Three writers to one block serialize at the home; the final memory
    value is the last writer's (directory busy-bit FIFO replay)."""
    m = machine(protocol="wbi")
    addr = m.alloc_word()
    order = []

    def w(p, delay, value):
        yield p.sim.timeout(delay)
        yield from p.rmw(addr, "write", value)
        order.append(value)

    # All arrive while the home is busy with the first.
    m.spawn(w(m.processor(0), 0, 1))
    m.spawn(w(m.processor(1), 1, 2))
    m.spawn(w(m.processor(2), 2, 3))
    m.run()
    assert m.peek_memory(addr) == 3
    assert order == [1, 2, 3]


def test_lock_and_data_traffic_interleave_safely():
    """CBL traffic on one block and WBI-style data traffic on others share
    the network and directories without interference."""
    m = machine(n=8, protocol="primitives")
    lock = CBLLock(m)
    bar = HWBarrier(m, n=8)
    data = [m.alloc_word() for _ in range(16)]

    def w(p):
        for r in range(3):
            yield from p.acquire(lock)
            v = yield from lock.read_data(p, 0)
            yield from lock.write_data(p, 0, v + 1)
            yield from p.release(lock)
            for a in data[p.node_id :: 8]:
                yield from p.write_global(a, r)
            yield from p.flush()
            yield from p.barrier(bar)

    for i in range(8):
        m.spawn(w(m.processor(i)))
    m.run()
    assert m.peek_memory(m.amap.word_addr(lock.block, 0)) == 24
    for i, a in enumerate(data):
        assert m.peek_memory(a) == 2


def test_solver_write_update_scheme():
    """The write-update extension runs and is competitive on the solver
    (word pushes; every reader genuinely wants every update)."""
    wu = run_linsolver(8, "write-update", iterations=4, cache_blocks=64, cache_assoc=2)
    ru = run_linsolver(8, "read-update", iterations=4, cache_blocks=64, cache_assoc=2)
    assert wu.completion_time > 0
    # On this all-readers-want-everything workload WU's word-granularity
    # pushes beat RU's block pushes:
    assert wu.extra["per_iteration"]["flits"] < ru.extra["per_iteration"]["flits"]


def test_solver_wrong_machine_for_wu_scheme():
    from repro.workloads import LinSolverWorkload

    m = machine(protocol="wbi")
    with pytest.raises(ValueError, match="writeupdate machine"):
        LinSolverWorkload(m, "write-update")


def test_read_update_attrition_under_cache_pressure():
    """Subscribed lines evicted under pressure unsubscribe cleanly and
    the remaining list stays consistent."""
    cfg = MachineConfig(n_nodes=2, cache_blocks=4, cache_assoc=1)
    m = Machine(cfg, protocol="primitives")
    p = m.processor(1)
    # Block 0 and block 4 collide in the 4-set, 1-way cache.
    a0 = m.amap.word_addr(0, 0)
    a4 = m.amap.word_addr(4, 0)

    def w():
        yield from p.read_update(a0)
        yield from p.read_update(a4)  # evicts block 0 -> auto-unsubscribe

    m.spawn(w())
    m.run()
    from repro.verify import check_ru_lists

    check_ru_lists(m)
    home0 = m.nodes[m.amap.home_of(0)]
    assert home0.directory.entry(0).ru_subscribers == []
    home4 = m.nodes[m.amap.home_of(4)]
    assert home4.directory.entry(4).ru_subscribers == [1]


def test_many_locks_many_nodes_stress():
    m = machine(n=8, protocol="primitives")
    locks = [CBLLock(m) for _ in range(4)]

    def w(p):
        rng = m.rng.node_stream(p.node_id, "stress")
        for _ in range(6):
            lock = locks[int(rng.integers(0, 4))]
            yield from p.acquire(lock)
            v = yield from lock.read_data(p, 0)
            yield from lock.write_data(p, 0, v + 1)
            yield from p.release(lock)

    for i in range(8):
        m.spawn(w(m.processor(i)))
    m.run()
    total = sum(m.peek_memory(m.amap.word_addr(l.block, 0)) for l in locks)
    assert total == 48
    from repro.verify import check_all

    check_all(m)
