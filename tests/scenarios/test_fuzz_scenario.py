"""Scenario-biased fuzzing: ``--scenario`` steers the campaign.

The bias must pin the protocol, tilt the atom mix, and graft the
scenario's targeted drops onto every drawn fault schedule — all while
the fuzz loop stays green on well-synchronized programs.
"""

import pytest

from repro.scenarios.fuzzbias import bias_for
from repro.verify import fuzz as fuzz_mod
from repro.verify.fuzz import fuzz


def test_bias_pins_protocol_and_tilts_atoms():
    bias = bias_for("lock-convoy")
    assert bias.protocols == ("primitives",)
    weights = dict(bias.atom_weights)
    # Lock-heavy tilt: lock_inc dominates the mix.
    assert weights["lock_inc"] == max(weights.values())
    assert abs(sum(weights.values()) - 1.0) < 1e-9


def test_bias_carries_targeted_drops_for_denial():
    bias = bias_for("denial-of-progress")
    assert bias.targeted, "denial scenario must contribute targeted drops"
    assert any(mtype == "LOCK_GRANT" for mtype, _, _ in bias.targeted)


def test_bias_without_fault_plan_has_no_targeted_entries():
    assert bias_for("hot-block-ping-pong").targeted == ()


def test_bias_unknown_scenario_raises():
    with pytest.raises(KeyError):
        bias_for("no-such-scenario")


def test_fuzz_with_scenario_bias_stays_green():
    report = fuzz(master_seed=3, iters=2, scenario="lock-convoy")
    assert report.ok, report.failure
    assert report.scenario == "lock-convoy"
    # Protocol pinned: every exercised combo runs the scenario's protocol.
    assert {p for (p, _m), n in report.runs_by_combo.items() if n > 0} == {"primitives"}


def test_fuzz_scenario_grafts_targeted_drops_onto_every_run(monkeypatch):
    """Every run_program call carries the scenario's targeted entries —
    both with ``--faults`` (grafted onto the drawn spec) and without
    (standalone targeted-only spec)."""
    specs = []

    def spy_run_program(program, **kwargs):
        specs.append(kwargs.get("faults"))
        return None  # every run passes; we only inspect the schedule

    monkeypatch.setattr(fuzz_mod, "run_program", spy_run_program)
    for with_faults in (False, True):
        specs.clear()
        report = fuzz_mod.fuzz(
            master_seed=3, iters=3, scenario="denial-of-progress", faults=with_faults
        )
        assert report.ok
        assert len(specs) == 3
        for spec in specs:
            assert spec is not None
            assert any(m == "LOCK_GRANT" for m, _, _ in spec.targeted)
