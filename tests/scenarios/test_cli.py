"""Exit-code and output contract of ``python -m repro.scenarios``.

CI keys off these codes, so they are pinned: 0 = every envelope held,
1 = at least one envelope violation, 2 = usage error.  The ``--json``
document must carry the ``repro.scenarios/v1`` schema tag.
"""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.scenarios import Envelope, get_scenario, register
from repro.scenarios.__main__ import main
from repro.scenarios.base import _REGISTRY

ENV_CMD = [sys.executable, "-m", "repro.scenarios"]
_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _run(args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_ROOT, "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        ENV_CMD + args, capture_output=True, text=True, timeout=300, env=env, cwd=_ROOT
    )


def test_list_exits_0_and_names_every_scenario():
    proc = _run(["--list"])
    assert proc.returncode == 0, proc.stderr
    for name in ("lock-convoy", "denial-of-progress", "denial-of-progress-overbudget"):
        assert name in proc.stdout


def test_single_scenario_run_exit_0_and_json_schema(tmp_path):
    out = tmp_path / "verdicts.json"
    proc = _run(
        ["--scenario", "lock-convoy", "--seeds", "1", "--jobs", "1",
         "--no-cache", "--json", str(out)]
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "[ok ] lock-convoy" in proc.stdout
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.scenarios/v1"
    assert doc["ok"] is True
    assert [v["name"] for v in doc["scenarios"]] == ["lock-convoy"]


def test_report_flag_writes_markdown_section(tmp_path):
    out = tmp_path / "attack.md"
    proc = _run(
        ["--scenario", "lock-convoy", "--seeds", "1", "--jobs", "1",
         "--no-cache", "--report", str(out)]
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert out.read_text().startswith("## Under attack")


def test_unknown_scenario_exits_2():
    proc = _run(["--scenario", "no-such-attack"])
    assert proc.returncode == 2
    assert "unknown scenario" in proc.stderr


def test_zero_seeds_exits_2():
    proc = _run(["--scenario", "lock-convoy", "--seeds", "0"])
    assert proc.returncode == 2
    assert "--seeds" in proc.stderr


@pytest.fixture
def rigged_scenario():
    """A real scenario re-registered under an envelope it cannot meet."""
    base = get_scenario("lock-convoy")
    scn = dataclasses.replace(
        base, name="rigged-convoy", envelope=Envelope(max_slowdown=1.01)
    )
    register(scn)
    try:
        yield scn
    finally:
        _REGISTRY.pop("rigged-convoy", None)


def test_envelope_violation_exits_1(rigged_scenario):
    # In-process (jobs=1) so the temporarily-registered scenario is visible;
    # worker processes would re-import only the shipped catalog.
    code = main(
        ["--scenario", "rigged-convoy", "--seeds", "1", "--jobs", "1", "--no-cache"]
    )
    assert code == 1
