"""Denial-of-progress: recovery within budget, diagnosis past it.

The adversarial pair at the heart of the suite.  ``denial-of-progress``
drops targeted lock-handoff messages and must *recover* — timeout/reissue
counters fire and the run still verifies.  Its over-budget twin disables
retries, so the same drop wedges the machine: the run must never silently
hang — the watchdog trips with a structured :class:`HangDiagnosis` that
names the scenario, and the trip message carries the scenario label.
"""

import pytest

from repro.scenarios import get_scenario, scenario_point
from repro.scenarios.base import ScenarioWorld
from repro.sim.watchdog import HangError
from repro.system.machine import Machine

SEED = 17


def test_denial_of_progress_recovers_and_verifies():
    doc = scenario_point("denial-of-progress", SEED, attack=True)
    # scenario_point already ran check_all + the scenario's result checks;
    # reaching here with no hang means the run verified under attack.
    assert doc["hang"] is None
    met = doc["metrics"]
    assert met["faults"]["fault.targeted_drops"] > 0
    assert met["node_counters"]["resilience.timeouts"] > 0
    assert met["node_counters"]["resilience.retries"] > 0
    assert any("targeted drop" in line for line in met["drop_log_tail"])


def test_denial_of_progress_baseline_is_clean():
    doc = scenario_point("denial-of-progress", SEED, attack=False)
    assert doc["hang"] is None
    assert doc["metrics"]["faults"].get("fault.targeted_drops", 0) == 0
    assert doc["metrics"]["node_counters"].get("resilience.timeouts", 0) == 0


def test_overbudget_yields_structured_diagnosis():
    """Past the envelope the hang is *diagnosed*, never silent."""
    doc = scenario_point("denial-of-progress-overbudget", SEED, attack=True)
    hang = doc["hang"]
    assert hang is not None
    assert hang["reason"] == "quiescent"
    assert hang["scenario"] == "denial-of-progress-overbudget"
    assert hang["blame"], "diagnosis must name culprits"
    assert doc["metrics"]["faults"]["fault.targeted_drops"] > 0


def test_overbudget_baseline_completes():
    """No attackers, no fault plan: retries-disabled config still finishes."""
    doc = scenario_point("denial-of-progress-overbudget", SEED, attack=False)
    assert doc["hang"] is None
    assert doc["victim_time"] is not None


def test_watchdog_trip_message_names_the_scenario():
    """Running the over-budget scenario by hand, the raised HangError's
    message carries the scenario label (the watchdog's attribution tag)."""
    scn = get_scenario("denial-of-progress-overbudget")
    machine = Machine(
        scn.config(SEED), protocol=scn.protocol, faults=scn.fault_spec(SEED)
    )
    machine.scenario = scn.name
    world = ScenarioWorld(machine)
    scn.build(world, True)
    with pytest.raises(HangError) as exc_info:
        machine.run_all(max_cycles=scn.max_cycles)
    assert "[scenario denial-of-progress-overbudget]" in str(exc_info.value)
    diag = exc_info.value.diagnosis
    assert diag is not None
    assert diag.scenario == "denial-of-progress-overbudget"
