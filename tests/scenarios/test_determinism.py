"""Scenario determinism: same seed, same metrics — under either kernel.

Every scenario builder is required to draw randomness only from the
machine's named RNG streams and to allocate identically regardless of the
``attack`` flag, so a scenario run is a pure function of
``(name, seed, attack)``.  These tests pin that: repeat runs are
bit-identical, and the heap kernel discipline reproduces the fast path's
documents exactly (the differential pin ``REPRO_KERNEL=heap`` relies on).
"""

import json

import pytest

from repro.scenarios import scenario_names, scenario_point

#: One lock attack, one coherence attack, one fabric attack — the cheap
#: cross-section; the nightly CLI run covers the full registry.
SUBSET = ["lock-convoy", "hot-block-ping-pong", "denial-of-progress"]


def _doc(name, seed, attack, fast_path=None):
    return json.dumps(
        scenario_point(name, seed, attack, fast_path=fast_path), sort_keys=True
    )


@pytest.mark.parametrize("name", SUBSET)
@pytest.mark.parametrize("attack", [False, True])
def test_repeat_runs_bit_identical(name, attack):
    assert _doc(name, 13, attack) == _doc(name, 13, attack)


@pytest.mark.parametrize("name", SUBSET)
def test_kernel_disciplines_agree(name):
    """Fast-path and heap kernels produce identical scenario documents."""
    assert _doc(name, 13, True, fast_path=True) == _doc(name, 13, True, fast_path=False)


def test_seeds_actually_vary_the_run():
    """Different seeds give different runs (the RNG streams are live)."""
    assert _doc("lock-convoy", 1, True) != _doc("lock-convoy", 2, True)


def test_subset_is_registered():
    for name in SUBSET:
        assert name in scenario_names()
