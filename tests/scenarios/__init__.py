"""Adversarial scenario suite tests."""
