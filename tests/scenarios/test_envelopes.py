"""Verdict-document schema pins and envelope evaluation paths.

The JSON the CLI writes (``--json``) is a contract: CI archives it and the
report renders it.  These tests pin the top-level schema, the per-scenario
verdict layout, and every violation branch in :func:`evaluate_scenario`
(exercised with hand-crafted run documents, so the failure paths are
covered without building a scenario that actually violates its envelope).
"""

import pytest

from repro.scenarios import (
    SCHEMA,
    Envelope,
    Scenario,
    evaluate_scenario,
    get_scenario,
    markdown_section,
    run_scenarios,
)

VERDICT_KEYS = [
    "description",
    "envelope",
    "name",
    "ok",
    "per_seed",
    "protocol",
    "tags",
    "violations",
]

PER_SEED_KEYS = [
    "drop_log_tail",
    "fault_counts",
    "hang",
    "message_blowup",
    "messages_attack",
    "messages_baseline",
    "recovery",
    "seed",
    "slowdown",
    "victim_time_attack",
    "victim_time_baseline",
]


def test_run_scenarios_document_schema():
    doc = run_scenarios(["lock-convoy"], n_seeds=1, jobs=1, use_cache=False)
    assert sorted(doc) == ["base_seed", "n_seeds", "ok", "scenarios", "schema"]
    assert doc["schema"] == SCHEMA == "repro.scenarios/v1"
    assert doc["ok"] is True
    (v,) = doc["scenarios"]
    assert sorted(v) == VERDICT_KEYS
    assert v["name"] == "lock-convoy"
    assert v["ok"] is True and v["violations"] == []
    (entry,) = v["per_seed"]
    assert sorted(entry) == PER_SEED_KEYS
    assert entry["slowdown"] is not None and entry["slowdown"] > 1.0
    assert entry["hang"] is None


# --------------------------------------------------------------------------
# evaluate_scenario violation branches, via crafted run documents
# --------------------------------------------------------------------------

def _doc(seed=1, victim_time=100.0, messages=50, hang=None, counters=None, faults=None):
    return {
        "seed": seed,
        "victim_time": victim_time,
        "hang": hang,
        "metrics": {
            "messages": messages,
            "node_counters": counters or {},
            "faults": faults or {},
            "drop_log_tail": [],
        },
    }


def _scn(envelope):
    return Scenario(
        name="crafted",
        description="hand-built for evaluation tests",
        protocol="primitives",
        config=lambda seed: None,
        build=lambda world, attack: None,
        envelope=envelope,
    )


def test_slowdown_over_envelope_flagged():
    scn = _scn(Envelope(max_slowdown=2.0))
    out = evaluate_scenario(scn, [(_doc(), _doc(victim_time=300.0))])
    assert not out["ok"]
    assert any("exceeds envelope max" in v for v in out["violations"])


def test_slowdown_below_floor_flagged():
    """The floor catches an attack that stopped biting (regressed attacker)."""
    scn = _scn(Envelope(max_slowdown=5.0, min_slowdown=1.5))
    out = evaluate_scenario(scn, [(_doc(), _doc(victim_time=110.0))])
    assert any("attack stopped biting" in v for v in out["violations"])


def test_message_blowup_over_envelope_flagged():
    scn = _scn(Envelope(max_slowdown=5.0, max_message_blowup=2.0))
    out = evaluate_scenario(
        scn, [(_doc(), _doc(victim_time=200.0, messages=500))]
    )
    assert any("message blowup" in v for v in out["violations"])


def test_unexpected_hang_flagged():
    scn = _scn(Envelope(max_slowdown=5.0))
    hang = {"reason": "quiescent", "scenario": "crafted"}
    out = evaluate_scenario(scn, [(_doc(), _doc(hang=hang))])
    assert any("attack hung" in v for v in out["violations"])


def test_baseline_hang_always_a_violation():
    """Even under hang_policy='expect', the *baseline* must complete."""
    scn = _scn(Envelope(max_slowdown=5.0, hang_policy="expect"))
    hang = {"reason": "quiescent", "scenario": "crafted"}
    out = evaluate_scenario(scn, [(_doc(hang=hang), _doc(hang=hang))])
    assert any("baseline hung" in v for v in out["violations"])


def test_expected_hang_missing_flagged():
    scn = _scn(Envelope(max_slowdown=5.0, hang_policy="expect"))
    out = evaluate_scenario(scn, [(_doc(), _doc(victim_time=200.0))])
    assert any("expected a watchdog trip" in v for v in out["violations"])


def test_expected_hang_must_name_the_scenario():
    scn = _scn(Envelope(max_slowdown=5.0, hang_policy="expect"))
    hang = {"reason": "quiescent", "scenario": "somebody-else"}
    out = evaluate_scenario(scn, [(_doc(), _doc(hang=hang))])
    assert any("names scenario" in v for v in out["violations"])


def test_required_counters_zero_flagged():
    scn = _scn(
        Envelope(
            max_slowdown=5.0,
            require_recovery=("resilience.timeouts",),
            require_faults=("fault.targeted_drops",),
        )
    )
    out = evaluate_scenario(scn, [(_doc(), _doc(victim_time=200.0))])
    assert any("recovery counter resilience.timeouts is zero" in v for v in out["violations"])
    assert any("fault counter fault.targeted_drops is zero" in v for v in out["violations"])


def test_within_envelope_passes_clean():
    scn = _scn(Envelope(max_slowdown=5.0, min_slowdown=1.2, max_message_blowup=3.0))
    out = evaluate_scenario(
        scn, [(_doc(), _doc(victim_time=200.0, messages=100))]
    )
    assert out["ok"] and out["violations"] == []


def test_markdown_section_renders_violations():
    scn = _scn(Envelope(max_slowdown=2.0))
    verdict = evaluate_scenario(scn, [(_doc(), _doc(victim_time=300.0))])
    doc = {"schema": SCHEMA, "base_seed": 0, "n_seeds": 1, "ok": False,
           "scenarios": [verdict]}
    md = markdown_section(doc)
    assert "## Under attack" in md
    assert "VIOLATION" in md
    assert "exceeds envelope max" in md


def test_markdown_section_real_scenario_row():
    scn = get_scenario("lock-convoy")
    doc = run_scenarios(["lock-convoy"], n_seeds=1, jobs=1, use_cache=False)
    md = markdown_section(doc)
    assert "| lock-convoy | primitives |" in md
    assert "within envelope" in md
    assert f"{scn.envelope.min_slowdown:.2f}-{scn.envelope.max_slowdown:.0f}x" in md
