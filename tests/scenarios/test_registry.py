"""Registry contents and the Envelope validation surface."""

import pytest

from repro.scenarios import (
    Envelope,
    Scenario,
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
)

#: The catalog is a contract: CI subsets and docs reference these names.
EXPECTED = [
    "barrier-straggler",
    "cbl-queue-thrash",
    "denial-of-progress",
    "denial-of-progress-overbudget",
    "false-sharing",
    "hot-block-ping-pong",
    "lock-convoy",
    "np-flood",
    "ru-churn",
    "wu-update-storm",
]


def test_catalog_names_pinned():
    assert scenario_names() == EXPECTED


def test_all_scenarios_sorted_and_complete():
    scns = all_scenarios()
    assert [s.name for s in scns] == EXPECTED
    for s in scns:
        assert s.description
        assert s.protocol in ("wbi", "primitives", "writeupdate")


def test_get_scenario_unknown_names_known_set():
    with pytest.raises(KeyError, match="lock-convoy"):
        get_scenario("no-such-scenario")


def test_duplicate_registration_rejected():
    scn = get_scenario("lock-convoy")
    with pytest.raises(ValueError, match="already registered"):
        register(scn)


def test_hang_policy_split():
    """Exactly one catalog entry expects a hang, and it has a fault plan."""
    expecting = [s for s in all_scenarios() if s.envelope.hang_policy == "expect"]
    assert [s.name for s in expecting] == ["denial-of-progress-overbudget"]
    assert expecting[0].fault_spec is not None


def test_denial_scenarios_declare_recovery_requirements():
    dop = get_scenario("denial-of-progress")
    assert "resilience.timeouts" in dop.envelope.require_recovery
    assert "resilience.retries" in dop.envelope.require_recovery
    assert "fault.targeted_drops" in dop.envelope.require_faults


def test_envelope_validation():
    with pytest.raises(ValueError, match="hang_policy"):
        Envelope(max_slowdown=2.0, hang_policy="maybe")
    with pytest.raises(ValueError, match="max_slowdown"):
        Envelope(max_slowdown=1.0, min_slowdown=2.0)
    with pytest.raises(ValueError, match="max_message_blowup"):
        Envelope(max_slowdown=2.0, max_message_blowup=0.0)


def test_envelope_to_dict_keys_pinned():
    env = Envelope(max_slowdown=3.0, require_recovery=("resilience.retries",))
    assert sorted(env.to_dict()) == [
        "hang_policy",
        "max_message_blowup",
        "max_slowdown",
        "min_slowdown",
        "require_faults",
        "require_recovery",
    ]


def test_scenario_is_frozen():
    scn = get_scenario("lock-convoy")
    assert isinstance(scn, Scenario)
    with pytest.raises(AttributeError):
        scn.name = "renamed"
