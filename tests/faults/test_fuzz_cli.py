"""Exit-code contract of ``python -m repro.verify.fuzz``.

CI keys off these codes, so they are pinned: 0 = budget exhausted with no
failure, 1 = a (shrunk) failure was found, 2 = bad command line.  The
``--faults`` and ``--max-wall-seconds`` flags ride the same contract.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.verify import fuzz as fuzz_mod

ENV_CMD = [sys.executable, "-m", "repro.verify.fuzz"]
_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _run(args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_ROOT, "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        ENV_CMD + args, capture_output=True, text=True, timeout=300, env=env, cwd=_ROOT
    )


def test_exit_0_on_clean_budget():
    proc = _run(["--seed", "0", "--iters", "4"])
    assert proc.returncode == 0, proc.stderr
    assert "fuzz OK" in proc.stdout


def test_exit_0_with_faults_enabled():
    proc = _run(["--seed", "0", "--iters", "6", "--faults", "--max-wall-seconds", "120"])
    assert proc.returncode == 0, proc.stderr
    assert "fuzz OK" in proc.stdout


def test_exit_1_on_detected_failure():
    """A deliberately broken consistency model guarantees a failure."""
    proc = _run(
        [
            "--seed", "2", "--iters", "40", "--protocol", "primitives",
            "--inject", "bc-no-release-fence", "--no-shrink",
        ]
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "FAILED" in proc.stdout


def test_exit_2_on_bad_arguments():
    assert _run(["--iters", "0"]).returncode == 2
    assert _run(["--iters", "notanumber"]).returncode == 2
    assert _run(["--max-wall-seconds", "0"]).returncode == 2
    assert _run(["--no-such-flag"]).returncode == 2


def test_main_in_process_matches_subprocess_contract():
    """main() returns the code (argparse errors raise SystemExit(2))."""
    assert fuzz_mod.main(["--seed", "0", "--iters", "2"]) == 0
    with pytest.raises(SystemExit) as exc_info:
        fuzz_mod.main(["--iters", "0"])
    assert exc_info.value.code == 2


def test_dump_diagnosis_written_on_hang(tmp_path, monkeypatch):
    """A watchdog trip surfaces through --dump-diagnosis as JSON."""
    from repro.faults.diagnosis import HangDiagnosis

    diag = HangDiagnosis(reason="quiescent", time=123.0, protocol="wbi", blame={"node 1 waiting"})

    def fake_run_program(program, **kwargs):
        on_hang = kwargs.get("on_hang")
        if on_hang is not None:
            on_hang(diag)
        return "hang diagnosed: injected [node 1 waiting]"

    monkeypatch.setattr(fuzz_mod, "run_program", fake_run_program)
    out = tmp_path / "diag.json"
    code = fuzz_mod.main(
        ["--seed", "0", "--iters", "1", "--faults", "--no-shrink", "--dump-diagnosis", str(out)]
    )
    assert code == 1
    payload = json.loads(out.read_text())
    assert payload["reason"] == "quiescent"
    assert payload["blame"] == ["node 1 waiting"]
