"""Exit-code contract of ``python -m repro.verify.fuzz``.

CI keys off these codes, so they are pinned: 0 = budget exhausted with no
failure, 1 = a (shrunk) failure was found, 2 = bad command line.  The
``--faults`` and ``--max-wall-seconds`` flags ride the same contract.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.verify import fuzz as fuzz_mod

ENV_CMD = [sys.executable, "-m", "repro.verify.fuzz"]
_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _run(args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_ROOT, "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        ENV_CMD + args, capture_output=True, text=True, timeout=300, env=env, cwd=_ROOT
    )


def test_exit_0_on_clean_budget():
    proc = _run(["--seed", "0", "--iters", "4"])
    assert proc.returncode == 0, proc.stderr
    assert "fuzz OK" in proc.stdout


def test_exit_0_with_faults_enabled():
    proc = _run(["--seed", "0", "--iters", "6", "--faults", "--max-wall-seconds", "120"])
    assert proc.returncode == 0, proc.stderr
    assert "fuzz OK" in proc.stdout


def test_exit_1_on_detected_failure():
    """A deliberately broken consistency model guarantees a failure."""
    proc = _run(
        [
            "--seed", "2", "--iters", "40", "--protocol", "primitives",
            "--inject", "bc-no-release-fence", "--no-shrink",
        ]
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "FAILED" in proc.stdout


def test_exit_2_on_bad_arguments():
    assert _run(["--iters", "0"]).returncode == 2
    assert _run(["--iters", "notanumber"]).returncode == 2
    assert _run(["--max-wall-seconds", "0"]).returncode == 2
    assert _run(["--no-such-flag"]).returncode == 2


def test_main_in_process_matches_subprocess_contract():
    """main() returns the code (argparse errors raise SystemExit(2))."""
    assert fuzz_mod.main(["--seed", "0", "--iters", "2"]) == 0
    with pytest.raises(SystemExit) as exc_info:
        fuzz_mod.main(["--iters", "0"])
    assert exc_info.value.code == 2


def test_trace_flag_replays_the_original_failing_run(tmp_path, monkeypatch):
    """--trace re-runs the *original* failing program with the bus enabled."""
    calls = []

    def fake_run_program(program, **kwargs):
        calls.append(kwargs)
        trace_path = kwargs.get("trace_path")
        if trace_path is not None:
            with open(trace_path, "w") as fh:
                fh.write('{"kind": "meta", "events": 0, "dropped": 0, "now": 0}\n')
            return None  # the traced replay's verdict is not consulted
        return "violation: injected for test"

    monkeypatch.setattr(fuzz_mod, "run_program", fake_run_program)
    out = tmp_path / "fail.trace"
    code = fuzz_mod.main(
        ["--seed", "0", "--iters", "1", "--no-shrink", "--trace", str(out)]
    )
    assert code == 1
    assert out.exists()
    assert json.loads(out.read_text().splitlines()[0])["kind"] == "meta"
    # Exactly one traced call (the replay), after the untraced fuzz run.
    traced = [kw for kw in calls if kw.get("trace_path") is not None]
    assert len(traced) == 1
    assert traced[0]["trace_path"] == str(out)


def test_trace_flag_end_to_end_on_real_failure(tmp_path):
    """Subprocess check: a genuine injected failure leaves a readable trace."""
    out = tmp_path / "real.trace"
    proc = _run(
        [
            "--seed", "2", "--iters", "40", "--protocol", "primitives",
            "--inject", "bc-no-release-fence", "--no-shrink",
            "--trace", str(out),
        ]
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "trace of failing run written to" in proc.stdout
    lines = out.read_text().splitlines()
    meta = json.loads(lines[0])
    assert meta["kind"] == "meta"
    assert meta["events"] == len(lines) - 1 > 0


def test_dump_diagnosis_written_on_hang(tmp_path, monkeypatch):
    """A watchdog trip surfaces through --dump-diagnosis as JSON."""
    from repro.faults.diagnosis import HangDiagnosis

    diag = HangDiagnosis(reason="quiescent", time=123.0, protocol="wbi", blame={"node 1 waiting"})

    def fake_run_program(program, **kwargs):
        on_hang = kwargs.get("on_hang")
        if on_hang is not None:
            on_hang(diag)
        return "hang diagnosed: injected [node 1 waiting]"

    monkeypatch.setattr(fuzz_mod, "run_program", fake_run_program)
    out = tmp_path / "diag.json"
    code = fuzz_mod.main(
        ["--seed", "0", "--iters", "1", "--faults", "--no-shrink", "--dump-diagnosis", str(out)]
    )
    assert code == 1
    payload = json.loads(out.read_text())
    assert payload["reason"] == "quiescent"
    assert payload["blame"] == ["node 1 waiting"]
