"""Protocol recovery under fault injection + fault-free bit-identity.

Two acceptance gates from the robustness work live here:

* with a lossy fabric (drops, duplicates, delay spikes) every protocol's
  timeout/retry + dedup machinery must still produce the *correct* final
  state — the same counter value a reliable run yields — while the retry
  counters show that recovery actually happened;
* without a fault plan, the resilience plumbing must be completely inert:
  the same seeds produce bit-identical ``RunMetrics`` as the seed tree
  (goldens pinned below were verified against the pre-resilience code).
"""

import pytest

from repro.faults.plan import FaultSpec
from repro.system.config import MachineConfig
from repro.system.machine import Machine

PROTOCOLS = ("wbi", "primitives", "writeupdate")

#: protocol -> (completion_time, messages, flits, round(mean_net_latency, 6),
#: final counter).  Verified bit-identical to the pre-resilience seed code.
GOLDEN = {
    "wbi": (797, 177, 393, 6.497175, 12),
    "primitives": (666, 153, 297, 5.03268, 12),
    "writeupdate": (658, 209, 429, 6.54067, 12),
}


class _Lock:
    """Thin CBL wrapper matching the golden workload's cost profile."""

    def __init__(self, machine):
        self.machine = machine
        self.block = machine.alloc_block()

    def acquire(self, proc, mode="write"):
        yield from proc.model.pre_acquire(proc)
        yield from proc.node.cbl.acquire(self.block, mode)

    def release(self, proc):
        yield from proc.model.pre_release(proc)
        yield from proc.node.cbl.release(self.block, want_ack=proc.model.release_wants_ack)


def _run_golden_workload(protocol, faults=None):
    """4 workers x 3 rounds of lock/read/write/release/rmw, then a barrier."""
    cfg = MachineConfig(n_nodes=8, cache_blocks=64, cache_assoc=2, seed=7)
    machine = Machine(cfg, protocol, faults=faults)
    lock = _Lock(machine)
    bar_block = machine.alloc_block()
    ctr = machine.alloc_word()
    machine.poke(ctr, 0)

    def worker(t):
        proc = machine.processor(t % 8, consistency="bc")
        machine._processors.append(proc)

        def body():
            for _ in range(3):
                yield from proc.compute(5 + t)
                yield from lock.acquire(proc)
                if protocol == "primitives":
                    value = yield from proc.read_global(ctr)
                else:
                    value = yield from proc.shared_read(ctr)
                yield from proc.shared_write(ctr, value + 1)
                yield from lock.release(proc)
                yield from proc.rmw(ctr, "fetch_add", 0)
            yield from proc.node.barrier_engine.wait(bar_block, 4)

        return body()

    for t in range(4):
        machine.spawn(worker(t), name=f"w{t}")
    machine.run_all(max_cycles=2_000_000)
    metrics = machine.metrics()
    fingerprint = (
        metrics.completion_time,
        metrics.messages,
        metrics.flits,
        round(metrics.mean_net_latency, 6),
        machine.peek_memory(ctr),
    )
    return machine, metrics, fingerprint


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fault_free_runs_are_bit_identical_to_seed(protocol):
    _, metrics, fingerprint = _run_golden_workload(protocol)
    assert fingerprint == GOLDEN[protocol]
    # The resilience machinery must be fully dormant on a reliable fabric.
    assert metrics.retries == 0
    assert metrics.timeouts == 0
    assert metrics.faults == {}


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_null_fault_spec_changes_nothing(protocol):
    """An all-zero spec must not even arm the resilience layer."""
    machine, _, fingerprint = _run_golden_workload(protocol, faults=FaultSpec())
    assert machine.fault_plan is None
    assert fingerprint == GOLDEN[protocol]


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_recovery_under_drops_dups_and_spikes(protocol):
    spec = FaultSpec(drop_prob=0.05, dup_prob=0.02, spike_prob=0.02, seed=3)
    machine, metrics, fingerprint = _run_golden_workload(protocol, faults=spec)
    # Recovered run converges to the correct final counter value...
    assert fingerprint[-1] == 12
    # ...having actually lost and retried messages.
    assert metrics.faults["fault.drops"] > 0
    assert metrics.retries > 0
    assert metrics.timeouts > 0
    assert metrics.timeout_cycles > 0
    # Recovery costs time: completion is strictly later than fault-free.
    assert metrics.completion_time > GOLDEN[protocol][0]


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_recovery_through_link_outage(protocol):
    """A mid-run directed link outage heals once the window closes."""
    spec = FaultSpec(link_down=((1, 0, 100.0, 900.0),), seed=5)
    machine, metrics, fingerprint = _run_golden_workload(protocol, faults=spec)
    assert fingerprint[-1] == 12
    assert metrics.faults["fault.outage_drops"] > 0


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_faulty_runs_are_deterministic(protocol):
    """Same spec + same machine seed => identical recovered run."""
    spec = FaultSpec(drop_prob=0.05, dup_prob=0.02, spike_prob=0.02, seed=3)
    _, m1, f1 = _run_golden_workload(protocol, faults=spec)
    _, m2, f2 = _run_golden_workload(protocol, faults=spec)
    assert f1 == f2
    assert m1.retries == m2.retries
    assert m1.faults == m2.faults
