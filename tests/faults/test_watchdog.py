"""Watchdog + structured hang diagnostics.

The acceptance gate for the whole robustness layer: a machine whose
recovery has been *disabled* (``max_retries=0``) on a lossy fabric must not
hang silently — the watchdog has to convert the stall into a
:class:`HangError` carrying a :class:`HangDiagnosis` with a non-empty
blame set that names the stuck parties.
"""

import json

import pytest

from repro.faults.diagnosis import HangDiagnosis, diagnose_machine
from repro.faults.plan import FaultSpec, ResilienceParams
from repro.sim.core import Simulator
from repro.sim.watchdog import HangError, Watchdog
from repro.system.config import MachineConfig
from repro.system.machine import Machine


# ------------------------------------------------------------------ unit


def test_watchdog_trips_on_quiescence_with_outstanding_work():
    sim = Simulator()

    def stuck(sim):
        from repro.sim.core import Event

        yield Event(sim)  # never fires: calendar drains while we wait

    proc = sim.process(stuck(sim))
    Watchdog(sim, outstanding=lambda: proc.is_alive, interval=100).start()
    with pytest.raises(HangError) as exc_info:
        sim.run()
    assert "quiescent" in str(exc_info.value)


def test_watchdog_does_not_fire_on_long_compute():
    """A long timeout keeps the calendar non-empty: no false positive even
    across many watchdog intervals."""
    sim = Simulator()
    done = []

    def slow(sim):
        yield sim.timeout(10_000)
        done.append(sim.now)

    proc = sim.process(slow(sim))
    Watchdog(sim, outstanding=lambda: proc.is_alive, interval=100).start()
    sim.run()
    assert done == [10_000]


def test_watchdog_stop_cancels_cleanly():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(5)

    proc = sim.process(quick(sim))
    wd = Watchdog(sim, outstanding=lambda: proc.is_alive, interval=100).start()
    wd.stop()
    sim.run()
    # No watchdog wake left behind: the clock stops at the workload.
    assert sim.now == 5
    assert not wd.fired


def test_watchdog_trips_on_retry_storm():
    sim = Simulator()
    retries = {"n": 0}

    def storm(sim):
        while True:
            retries["n"] += 10
            yield sim.timeout(50)

    proc = sim.process(storm(sim))
    Watchdog(
        sim,
        outstanding=lambda: proc.is_alive,
        interval=100,
        retries=lambda: retries["n"],
        retry_budget=200,
    ).start()
    with pytest.raises(HangError) as exc_info:
        sim.run(until=1_000_000)
    assert "retry-storm" in str(exc_info.value)


# ------------------------------------------------------------------ machine-level


def _stuck_machine(seed=0):
    """Retry-disabled resilience on a lossy fabric: a dropped message is a
    permanent loss, so some run of this workload deadlocks."""
    cfg = MachineConfig(
        n_nodes=4,
        cache_blocks=64,
        cache_assoc=2,
        seed=seed,
        resilience=ResilienceParams(max_retries=0),
    )
    machine = Machine(cfg, protocol="wbi", faults=FaultSpec(drop_prob=0.08, seed=seed))
    ctr = machine.alloc_word()
    machine.poke(ctr, 0)

    def worker(t):
        proc = machine.processor(t % 4, consistency="bc")
        machine._processors.append(proc)

        def body():
            for _ in range(6):
                value = yield from proc.shared_read(ctr)
                yield from proc.shared_write(ctr, value + 1)
                yield from proc.rmw(ctr, "fetch_add", 0)

        return body()

    for t in range(3):
        machine.spawn(worker(t), name=f"w{t}")
    return machine


def test_retry_disabled_deadlock_is_caught_with_blame():
    caught = 0
    for seed in range(4):
        machine = _stuck_machine(seed)
        try:
            machine.run_all(max_cycles=5_000_000)
        except HangError as exc:
            diag = exc.diagnosis
            assert isinstance(diag, HangDiagnosis)
            assert diag.reason == "quiescent"
            assert diag.blame, "watchdog must name at least one culprit"
            assert diag.protocol == "wbi"
            caught += 1
    # drop_prob=0.08 over dozens of messages: every seed here deadlocks
    # (verified; the assertion keeps the gate honest if constants change).
    assert caught >= 1


def test_diagnosis_is_structured_and_serializable():
    machine = _stuck_machine(0)
    with pytest.raises(HangError) as exc_info:
        machine.run_all(max_cycles=5_000_000)
    diag = exc_info.value.diagnosis
    # The drop log feeds the blame set so the operator sees *which* message
    # vanished, not just who is waiting.
    assert any("lost message" in b for b in diag.blame)
    payload = json.loads(json.dumps(diag.to_dict(), sort_keys=True))
    assert payload["reason"] == "quiescent"
    assert payload["blame"] == sorted(diag.blame)
    text = diag.format()
    assert "HangDiagnosis: quiescent" in text
    assert "blame:" in text


def test_diagnose_machine_on_healthy_machine_is_empty():
    cfg = MachineConfig(n_nodes=4, seed=1)
    machine = Machine(cfg, protocol="wbi")
    diag = diagnose_machine(machine, "probe")
    assert diag.blame == set()
    assert diag.alive_processes == []


def test_watchdog_does_not_inflate_completion_time():
    """Golden-workload completion must not move when the watchdog arms
    (its pending wake is canceled the instant the last workload ends)."""
    from .test_recovery import GOLDEN, _run_golden_workload

    spec = FaultSpec(drop_prob=0.05, dup_prob=0.02, spike_prob=0.02, seed=3)
    machine, _, _ = _run_golden_workload("wbi", faults=spec)
    # Watchdog armed (fault plan present) yet the run ended at workload
    # completion, not at a watchdog interval boundary.
    interval = 4 * machine.cfg.resilience.max_timeout
    assert machine.sim.now % interval != 0

def test_quiescence_detected_through_canceled_retry_graveyard():
    """A calendar stuffed with lazily-canceled retry timers is still
    quiescent: ``pending_live()`` nets the graveyard out, so the watchdog
    trips instead of mistaking dead entries for scheduled work."""
    from repro.sim.core import Event

    sim = Simulator()

    def stuck(sim):
        yield Event(sim)  # never fires

    proc = sim.process(stuck(sim))
    # Dozens of "retry timers", all disarmed before they fire — exactly
    # what a retry-exhausted protocol leaves behind.
    timers = [sim.timeout(10_000 + i) for i in range(48)]
    for t in timers:
        t.cancel()
    Watchdog(sim, outstanding=lambda: proc.is_alive, interval=100).start()
    with pytest.raises(HangError, match="quiescent"):
        sim.run()


def test_diagnosis_reports_calendar_occupancy():
    """HangDiagnosis carries canceled_pending / pending_live so a wedge full
    of dead retry timers is distinguishable from a quiet calendar."""
    machine = _stuck_machine(0)
    with pytest.raises(HangError) as exc_info:
        machine.run_all(max_cycles=5_000_000)
    diag = exc_info.value.diagnosis
    payload = diag.to_dict()
    assert payload["canceled_pending"] == machine.sim.canceled_pending
    assert payload["pending_live"] >= 0
    assert "canceled-pending" in diag.format()
