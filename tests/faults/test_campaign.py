"""The fault campaign acceptance gate.

Fifty seeds per protocol, each with an independently drawn fault schedule
mixing drops, duplicates, delay spikes, and (half the time) a link-outage
window.  Every run must terminate — no silent hangs — and either pass all
PR-1 oracles after recovery or produce a structured hang diagnosis.  With
the timeout/retry layer enabled (the default under faults) the protocols
are expected to recover everywhere, so a failure here is a real protocol
bug; ``run_program`` turns a watchdog trip into a diagnosed failure string
rather than a hung test session.
"""

import random

import numpy as np
import pytest

from repro.faults.plan import FaultSpec
from repro.verify.fuzz import _next_pow2, gen_program, run_program

SEEDS_PER_PROTOCOL = 50


def _campaign_case(seed):
    """Deterministic (program, fault spec) pair for one campaign seed."""
    rng = np.random.default_rng(seed ^ 0xC0FFEE)
    program = gen_program(rng)
    spec = FaultSpec.draw(
        random.Random(seed * 1000003 + 17),
        seed=seed + 1,
        n_nodes=max(4, _next_pow2(program.n_threads + 1)),
    )
    return program, spec


@pytest.mark.parametrize("protocol", ["wbi", "primitives", "writeupdate"])
def test_fault_campaign_recovers_everywhere(protocol):
    hangs = []
    failures = []
    classes = {"drop": 0, "dup": 0, "spike": 0, "link": 0}
    for seed in range(SEEDS_PER_PROTOCOL):
        program, spec = _campaign_case(seed)
        classes["drop"] += spec.drop_prob > 0
        classes["dup"] += spec.dup_prob > 0
        classes["spike"] += spec.spike_prob > 0
        classes["link"] += bool(spec.link_down)
        failure = run_program(
            program,
            protocol=protocol,
            model="bc",
            seed=seed,
            faults=spec,
            on_hang=lambda diag: hangs.append(diag),
        )
        if failure is not None:
            failures.append(f"seed {seed} [{spec.describe()}]: {failure}")
    # Zero silent hangs is implied by termination; zero *diagnosed* hangs
    # and zero oracle failures is the recovery guarantee.
    assert not hangs, f"{len(hangs)} diagnosed hang(s): {hangs[0].format()}"
    assert not failures, "\n".join(failures[:5])
    # The campaign must actually exercise every fault class.
    assert all(classes.values()), f"campaign draw left a class unexercised: {classes}"
