"""Unit tests for the fault schedule (`FaultSpec` / `FaultPlan`)."""

import random

import pytest

from repro.faults.plan import DEFAULT_RESILIENCE, FaultPlan, FaultSpec, ResilienceParams
from repro.network.message import Message, MessageType


def test_null_spec_is_null():
    assert FaultSpec().is_null
    assert not FaultSpec(drop_prob=0.01).is_null
    assert not FaultSpec(link_down=((0, 1, 10.0, 20.0),)).is_null


def test_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(drop_prob=1.5)
    with pytest.raises(ValueError):
        FaultSpec(dup_prob=-0.1)
    with pytest.raises(ValueError):
        FaultSpec(spike_cycles=-1)
    with pytest.raises(ValueError):
        FaultSpec(link_down=((0, 1, 50.0, 20.0),))
    with pytest.raises(ValueError):
        FaultSpec(node_down=((0, 50.0, 20.0),))


def test_with_seed_changes_only_the_seed():
    spec = FaultSpec(drop_prob=0.05, dup_prob=0.01, seed=1)
    other = spec.with_seed(99)
    assert other.seed == 99
    assert other.drop_prob == spec.drop_prob
    assert other.dup_prob == spec.dup_prob


def test_draw_is_deterministic():
    a = FaultSpec.draw(random.Random(42), seed=7, n_nodes=8)
    b = FaultSpec.draw(random.Random(42), seed=7, n_nodes=8)
    assert a == b
    c = FaultSpec.draw(random.Random(43), seed=7, n_nodes=8)
    d = FaultSpec.draw(random.Random(44), seed=7, n_nodes=8)
    # Not all draws are identical (different rngs explore the space).
    assert len({a, c, d}) > 1


def test_describe_mentions_active_classes():
    text = FaultSpec(drop_prob=0.05, link_down=((0, 1, 10.0, 20.0),)).describe()
    assert "drop" in text
    assert "link" in text


def _pump(plan, n=500):
    """Drive the plan's stochastic hooks; returns the decision trace."""
    trace = []
    msg = Message(1, 2, MessageType.READ_MISS)
    for i in range(n):
        trace.append(plan.dispatch_action(msg, now=float(i)))
        trace.append(plan.extra_delay())
        trace.append(plan.send_outage(0, 1, now=float(i)))
    return trace


def test_plan_same_seed_same_schedule():
    spec = FaultSpec(drop_prob=0.05, dup_prob=0.02, spike_prob=0.02, seed=3)
    assert _pump(FaultPlan(spec)) == _pump(FaultPlan(spec))


def test_plan_different_seed_different_schedule():
    spec = FaultSpec(drop_prob=0.05, dup_prob=0.02, spike_prob=0.02, seed=3)
    assert _pump(FaultPlan(spec)) != _pump(FaultPlan(spec.with_seed(4)))


def test_link_down_window_drops_only_inside_window():
    spec = FaultSpec(link_down=((0, 1, 100.0, 200.0),))
    plan = FaultPlan(spec)
    assert not plan.send_outage(0, 1, now=50.0)
    assert plan.send_outage(0, 1, now=150.0)
    assert not plan.send_outage(0, 1, now=250.0)
    # Other links are unaffected.
    assert not plan.send_outage(1, 0, now=150.0)


def test_node_down_window_kills_both_directions():
    spec = FaultSpec(node_down=((2, 100.0, 200.0),))
    plan = FaultPlan(spec)
    assert plan.send_outage(2, 5, now=150.0)
    assert plan.send_outage(5, 2, now=150.0)
    assert not plan.send_outage(3, 4, now=150.0)
    assert not plan.send_outage(2, 5, now=50.0)


def test_counters_track_each_class():
    spec = FaultSpec(drop_prob=0.2, dup_prob=0.2, spike_prob=0.2, seed=11)
    plan = FaultPlan(spec)
    _pump(plan, n=300)
    counters = plan.counters()
    assert counters["fault.drops"] > 0
    assert counters["fault.dups"] > 0
    assert counters["fault.spikes"] > 0
    assert plan.total_lost >= counters["fault.drops"]


def test_resilience_backoff_caps():
    res = ResilienceParams(request_timeout=400, backoff=2.0, max_timeout=3200)
    waits = [res.timeout_for(a) for a in range(6)]
    assert waits[0] == 400
    assert waits[1] == 800
    assert max(waits) == 3200
    assert waits == sorted(waits)
    assert DEFAULT_RESILIENCE.timeout_for(0) == 400
