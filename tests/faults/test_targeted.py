"""Targeted drops: spec validation and pinned recovery regressions.

Targeted entries (``(mtype_name, skip, count)``) are the adversary's tool:
"lose exactly the second LOCK_GRANT".  These tests pin (a) the spec's
validation surface, (b) that recovery absorbs targeted drop patterns —
timeout/reissue and stale-grant voiding counters all nonzero *and* the run
still produces correct results — and (c) that the fuzz shrinker can strip
targeted entries one at a time.
"""

import pytest

from repro import Machine, MachineConfig
from repro.faults.plan import FaultSpec
from repro.sync.base import CBLLock
from repro.verify import check_all
from repro.verify.fuzz import _fault_reductions


# --------------------------------------------------------------------------
# Spec surface
# --------------------------------------------------------------------------

def test_unknown_message_type_rejected():
    with pytest.raises(ValueError, match="NO_SUCH_TYPE"):
        FaultSpec(targeted=(("NO_SUCH_TYPE", 0, 1),))


def test_negative_skip_or_count_rejected():
    with pytest.raises(ValueError):
        FaultSpec(targeted=(("LOCK_GRANT", -1, 1),))
    with pytest.raises(ValueError):
        FaultSpec(targeted=(("LOCK_GRANT", 0, -1),))


def test_is_null_accounts_for_targeted_entries():
    assert FaultSpec().is_null
    # A zero-count entry drops nothing: still a null spec.
    assert FaultSpec(targeted=(("LOCK_GRANT", 3, 0),)).is_null
    assert not FaultSpec(targeted=(("LOCK_GRANT", 0, 1),)).is_null


def test_describe_names_targeted_entries():
    spec = FaultSpec(targeted=(("LOCK_GRANT", 1, 2),))
    assert "target(LOCK_GRANT)[1:+2]" in spec.describe()


def test_shrinker_strips_targeted_entries_one_at_a_time():
    spec = FaultSpec(targeted=(("LOCK_GRANT", 0, 1), ("UNLOCK_RELEASE", 0, 1)))
    singles = [
        c.targeted for c in _fault_reductions(spec) if len(c.targeted) == 1
    ]
    assert (("LOCK_GRANT", 0, 1),) in singles
    assert (("UNLOCK_RELEASE", 0, 1),) in singles


# --------------------------------------------------------------------------
# Pinned recovery regressions
# --------------------------------------------------------------------------

def _lock_machine(faults):
    cfg = MachineConfig(n_nodes=8, cache_blocks=64, cache_assoc=2, seed=5)
    machine = Machine(cfg, protocol="primitives", faults=faults)
    lock = CBLLock(machine)
    return machine, lock


def test_recovery_under_targeted_grant_and_release_drops():
    """Dropped LOCK_GRANT / UNLOCK_RELEASE messages are reissued.

    Three workers increment a lock-protected counter four times each while
    the fabric swallows the second and third grants and the first release.
    The timeout/reissue machinery must recover every lost handoff: the
    counter ends exact, the structural invariants hold, and the resilience
    counters prove the recovery path (not luck) did it.
    """
    machine, lock = _lock_machine(
        FaultSpec(targeted=(("LOCK_GRANT", 1, 2), ("UNLOCK_RELEASE", 0, 1)))
    )

    def worker(proc):
        for _ in range(4):
            yield from proc.acquire(lock)
            v = yield from lock.read_data(proc, 0)
            yield from lock.write_data(proc, 0, v + 1)
            yield from proc.compute(10)
            yield from proc.release(lock)

    for i in range(3):
        machine.spawn(worker(machine.processor(i)), name=f"w{i}")
    machine.run_all()
    check_all(machine)

    home = machine.nodes[machine.amap.home_of(lock.block)]
    assert home.memory.read_word(machine.amap.word_addr(lock.block, 0)) == 12

    m = machine.metrics()
    assert m.faults["fault.targeted_drops"] > 0
    assert m.timeouts > 0
    assert m.retries > 0
    # The drop log names the targeted kills, and the tail rides RunMetrics.
    assert any("targeted drop" in line for line in m.drop_log_tail)


def test_void_stale_grants_fires_under_targeted_inv_drop():
    """A dropped INV forces a re-probe, voiding the reader's stale grant.

    Node 1 reads the word (its read grant is recorded for dedup replay);
    node 2 then writes it, so the home probes node 1 — voiding the
    recorded grant first — and the targeted drop of that INV forces the
    re-probe path too.  Both counters must be nonzero and the writer must
    observe its own write.
    """
    cfg = MachineConfig(n_nodes=4, cache_blocks=64, cache_assoc=2, seed=5)
    machine = Machine(cfg, protocol="wbi", faults=FaultSpec(targeted=(("INV", 0, 1),)))
    word = machine.alloc_word()
    seen = {}

    def reader(proc):
        yield from proc.shared_read(word)
        yield from proc.compute(50)

    def writer(proc):
        yield from proc.compute(30)  # let the reader cache the block first
        yield from proc.shared_write(word, 7)
        seen["writer"] = (yield from proc.shared_read(word))

    machine.spawn(reader(machine.processor(1)), name="r")
    machine.spawn(writer(machine.processor(2)), name="w")
    machine.run_all()
    check_all(machine)

    assert seen["writer"] == 7
    m = machine.metrics()
    assert m.faults["fault.targeted_drops"] == 1
    assert m.node_counters["resilience.void_stale_grants"] > 0
    assert m.timeouts > 0 and m.retries > 0


def test_targeted_drops_consume_no_rng():
    """Adding a targeted entry never perturbs the probabilistic streams.

    Two runs with identical probabilistic faults — one with an extra
    targeted entry on a message type the workload never sends — must lose
    exactly the same probabilistic messages.
    """
    def run(spec):
        cfg = MachineConfig(n_nodes=4, cache_blocks=64, cache_assoc=2, seed=9)
        machine = Machine(cfg, protocol="wbi", faults=spec)
        word = machine.alloc_word()

        def worker(proc):
            for _ in range(3):
                yield from proc.rmw(word, "fetch_add", 1)
                yield from proc.compute(15)

        for i in range(4):
            machine.spawn(worker(machine.processor(i)), name=f"w{i}")
        machine.run_all()
        return machine.fault_plan.counters()

    base = run(FaultSpec(drop_prob=0.05, seed=11))
    with_target = run(
        FaultSpec(drop_prob=0.05, seed=11, targeted=(("SEM_GRANT", 0, 1),))
    )
    assert with_target["fault.targeted_drops"] == 0  # never sent, never hit
    assert base["fault.drops"] == with_target["fault.drops"]
