"""HangDiagnosis carries the trace tail when the bus is on.

The watchdog's blame set says *who* is stuck; the trace tail says what they
were doing just before.  ``diagnose_machine`` filters the bus's recent
events down to the blamed nodes/blocks (falling back to the whole tail when
nothing matches), and the tail must survive ``to_dict`` and show up in
``format`` so operators see it in dumps and tracebacks alike.
"""

import json

import pytest

from repro import CBLLock, Machine, MachineConfig, ObsParams
from repro.faults.diagnosis import diagnose_machine
from repro.faults.plan import FaultSpec, ResilienceParams
from repro.sim.watchdog import HangError


def _traced_lock_run(obs=None):
    cfg = MachineConfig(n_nodes=4, seed=3, obs=obs)
    machine = Machine(cfg, protocol="primitives")
    lock = CBLLock(machine)

    def worker(proc):
        for _ in range(2):
            yield from proc.acquire(lock)
            value = yield from lock.read_data(proc, 0)
            yield from lock.write_data(proc, 0, value + 1)
            yield from proc.release(lock)

    for i in range(4):
        machine.spawn(worker(machine.processor(i, consistency="bc")), name=f"w{i}")
    machine.run_all()
    return machine


def _stuck_traced_machine(seed):
    """Retry-disabled lossy fabric (the watchdog-test recipe) + trace bus."""
    cfg = MachineConfig(
        n_nodes=4,
        cache_blocks=64,
        cache_assoc=2,
        seed=seed,
        resilience=ResilienceParams(max_retries=0),
        obs=ObsParams(),
    )
    machine = Machine(cfg, protocol="wbi", faults=FaultSpec(drop_prob=0.08, seed=seed))
    ctr = machine.alloc_word()
    machine.poke(ctr, 0)

    def worker(t):
        proc = machine.processor(t % 4, consistency="bc")
        machine._processors.append(proc)

        def body():
            for _ in range(6):
                value = yield from proc.shared_read(ctr)
                yield from proc.shared_write(ctr, value + 1)
                yield from proc.rmw(ctr, "fetch_add", 0)

        return body()

    for t in range(3):
        machine.spawn(worker(t), name=f"w{t}")
    return machine


def test_trace_tail_empty_without_bus():
    machine = _traced_lock_run(obs=None)
    diag = diagnose_machine(machine, "probe")
    assert diag.trace_tail == []
    assert "trace tail:" not in diag.format()


def test_trace_tail_falls_back_to_whole_tail_when_nothing_blamed():
    machine = _traced_lock_run(obs=ObsParams())
    diag = diagnose_machine(machine, "probe")
    # Healthy machine: no blamed objects, so the whole recent tail is kept.
    assert diag.blame == set()
    assert diag.trace_tail
    assert diag.trace_tail == machine.obs.tail_events()


def test_trace_tail_survives_to_dict_and_format():
    machine = _traced_lock_run(obs=ObsParams())
    diag = diagnose_machine(machine, "probe")
    payload = json.loads(json.dumps(diag.to_dict(), sort_keys=True))
    assert payload["trace_tail"] == diag.trace_tail
    text = diag.format()
    assert "trace tail:" in text
    assert diag.trace_tail[-1]["name"] in text


def test_hang_diagnosis_on_traced_machine_carries_tail():
    caught = 0
    for seed in range(4):
        machine = _stuck_traced_machine(seed)
        try:
            machine.run_all(max_cycles=5_000_000)
        except HangError as exc:
            diag = exc.diagnosis
            assert diag.blame
            assert diag.trace_tail, "traced hang must carry its trace tail"
            # Every tail entry is a serializable event dict.
            for ev in diag.trace_tail:
                assert "ts" in ev and "name" in ev and "cat" in ev
            assert "trace tail:" in diag.format()
            caught += 1
    assert caught >= 1
