"""Unit tests for cache lines (Fig. 2a metadata)."""

from repro.cache import CacheLine, LineState, LockMode


def test_new_line_invalid():
    line = CacheLine(4)
    assert not line.valid
    assert not line.dirty
    assert line.lock is LockMode.NONE
    assert not line.is_queue_member()


def test_fill_sets_state_and_clears_metadata():
    line = CacheLine(4)
    line.update = True
    line.lock = LockMode.READ
    line.fill(7, [1, 2, 3, 4], LineState.SHARED)
    assert line.valid
    assert line.block == 7
    assert line.data == [1, 2, 3, 4]
    assert line.dirty_mask == 0
    assert not line.update
    assert line.lock is LockMode.NONE


def test_per_word_dirty_bits():
    line = CacheLine(4)
    line.fill(0, [0, 0, 0, 0], LineState.EXCLUSIVE)
    line.write_word(1, 11)
    line.write_word(3, 33)
    assert line.dirty_mask == 0b1010
    assert line.dirty_words() == [1, 3]
    assert line.read_word(1) == 11
    assert line.read_word(0) == 0


def test_write_word_not_dirty_option():
    line = CacheLine(4)
    line.fill(0, [0] * 4, LineState.SHARED)
    line.write_word(2, 5, dirty=False)
    assert line.read_word(2) == 5
    assert not line.dirty


def test_queue_membership_pins_line():
    line = CacheLine(4)
    line.fill(0, [0] * 4, LineState.SHARED)
    assert not line.is_queue_member()
    line.update = True
    assert line.is_queue_member()
    line.update = False
    line.lock = LockMode.WAIT_WRITE
    assert line.is_queue_member()


def test_invalidate_clears_everything():
    line = CacheLine(4)
    line.fill(3, [9] * 4, LineState.EXCLUSIVE)
    line.write_word(0, 1)
    line.update = True
    line.prev, line.next = 2, 5
    line.invalidate()
    assert not line.valid
    assert line.dirty_mask == 0
    assert not line.update
    assert line.prev is None and line.next is None


def test_lock_mode_predicates():
    assert LockMode.READ.is_held
    assert LockMode.WRITE.is_held
    assert not LockMode.WAIT_READ.is_held
    assert LockMode.WAIT_READ.is_waiting
    assert LockMode.WAIT_WRITE.is_waiting
    assert not LockMode.NONE.is_held
    assert not LockMode.NONE.is_waiting
