"""Unit tests for the set-associative cache."""

import pytest

from repro.cache import CacheGeometryError, LineState, LockMode, SetAssocCache


def make(n_sets=4, assoc=2, wpb=4):
    return SetAssocCache(n_sets, assoc, wpb)


def test_geometry_validation():
    with pytest.raises(CacheGeometryError):
        SetAssocCache(3, 2, 4)  # non power of two sets
    with pytest.raises(CacheGeometryError):
        SetAssocCache(4, 0, 4)
    with pytest.raises(CacheGeometryError):
        SetAssocCache(4, 2, 0)


def test_capacity():
    assert make(8, 4).capacity_blocks == 32


def test_miss_then_hit():
    c = make()
    assert c.lookup(5) is None
    c.install(5, [1, 2, 3, 4], LineState.SHARED)
    line = c.lookup(5)
    assert line is not None and line.data == [1, 2, 3, 4]
    assert c.stats.counters["misses"] == 1
    assert c.stats.counters["hits"] == 1


def test_set_mapping_conflicts():
    c = make(n_sets=4, assoc=1)
    c.install(0, [0] * 4, LineState.SHARED)
    # Block 4 maps to the same set (4 mod 4 == 0) and evicts block 0.
    _, evicted = c.install(4, [0] * 4, LineState.SHARED)
    assert evicted is not None and evicted[0] == 0
    assert c.lookup(0) is None
    assert c.lookup(4) is not None


def test_lru_eviction_order():
    c = make(n_sets=1, assoc=2)
    c.install(0, [0] * 4, LineState.SHARED, now=0)
    c.install(1, [0] * 4, LineState.SHARED, now=1)
    c.lookup(0, now=2)  # touch 0; 1 becomes LRU
    _, evicted = c.install(2, [0] * 4, LineState.SHARED, now=3)
    assert evicted[0] == 1


def test_eviction_reports_dirty_mask():
    c = make(n_sets=1, assoc=1)
    line, _ = c.install(0, [1, 2, 3, 4], LineState.EXCLUSIVE)
    line.write_word(2, 99)
    _, evicted = c.install(1, [0] * 4, LineState.SHARED)
    blk, words, mask = evicted
    assert blk == 0
    assert words[2] == 99
    assert mask == 0b0100


def test_pinned_lines_not_victimized():
    c = make(n_sets=1, assoc=2)
    l0, _ = c.install(0, [0] * 4, LineState.SHARED, now=0)
    c.install(1, [0] * 4, LineState.SHARED, now=1)
    l0.update = True  # pin the LRU line
    _, evicted = c.install(2, [0] * 4, LineState.SHARED, now=2)
    assert evicted[0] == 1  # the newer but unpinned line goes
    assert c.peek(0) is not None


def test_all_pinned_raises():
    c = make(n_sets=1, assoc=2)
    l0, _ = c.install(0, [0] * 4, LineState.SHARED)
    l1, _ = c.install(1, [0] * 4, LineState.SHARED)
    l0.lock = LockMode.WAIT_READ
    l1.update = True
    with pytest.raises(CacheGeometryError):
        c.install(2, [0] * 4, LineState.SHARED)
    assert c.victim_for(2) is None


def test_reinstall_same_block_no_eviction():
    c = make(n_sets=1, assoc=1)
    c.install(0, [1] * 4, LineState.SHARED)
    line, evicted = c.install(0, [2] * 4, LineState.EXCLUSIVE)
    assert evicted is None
    assert line.data == [2] * 4
    assert line.state is LineState.EXCLUSIVE


def test_invalidate():
    c = make()
    c.install(3, [0] * 4, LineState.SHARED)
    line = c.invalidate(3)
    assert line is not None
    assert c.lookup(3) is None
    assert c.invalidate(99) is None


def test_peek_does_not_touch_stats():
    c = make()
    c.install(1, [0] * 4, LineState.SHARED)
    before = c.stats.counters.as_dict()
    c.peek(1)
    c.peek(2)
    assert c.stats.counters.as_dict() == before


def test_valid_lines_listing():
    c = make()
    c.install(1, [0] * 4, LineState.SHARED)
    c.install(2, [0] * 4, LineState.EXCLUSIVE)
    assert sorted(l.block for l in c.valid_lines()) == [1, 2]


def test_hit_rate():
    c = make()
    c.install(0, [0] * 4, LineState.SHARED)
    c.lookup(0)
    c.lookup(0)
    c.lookup(9)
    assert c.hit_rate == pytest.approx(2 / 3)
