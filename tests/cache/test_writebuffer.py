"""Unit tests for the write buffer (Section 4.2)."""

import pytest

from repro.cache import WriteBuffer
from repro.sim import Simulator


class FakeNI:
    """Records issued writes; the test acks them manually or after a delay."""

    def __init__(self, sim, ack_delay=None):
        self.sim = sim
        self.issued = []
        self.ack_delay = ack_delay
        self.wb = None

    def issue(self, addr, value, entry_id):
        self.issued.append((addr, value, entry_id))
        if self.ack_delay is not None:
            ev = self.sim.timeout(self.ack_delay, value=entry_id)
            ev.callbacks.append(lambda e: self.wb.retire(e.value))


def make(sim, ack_delay=None, capacity=None):
    ni = FakeNI(sim, ack_delay)
    wb = WriteBuffer(sim, ni.issue, capacity=capacity)
    ni.wb = wb
    return wb, ni


def test_put_issues_immediately():
    sim = Simulator()
    wb, ni = make(sim)
    wb.put(100, 7)
    assert ni.issued == [(100, 7, 0)]
    assert wb.pending_count == 1


def test_retire_decrements_pending():
    sim = Simulator()
    wb, ni = make(sim)
    wb.put(1, 1)
    wb.put(2, 2)
    wb.retire(0)
    assert wb.pending_count == 1
    wb.retire(1)
    assert wb.pending_count == 0


def test_retire_unknown_raises():
    sim = Simulator()
    wb, _ = make(sim)
    with pytest.raises(KeyError):
        wb.retire(99)


def test_flush_waits_for_all_acks():
    sim = Simulator()
    wb, ni = make(sim, ack_delay=10)
    done = []

    def p(sim):
        wb.put(1, 1)
        wb.put(2, 2)
        yield wb.flush()
        done.append(sim.now)

    sim.process(p(sim))
    sim.run()
    assert done == [10]
    assert wb.pending_count == 0


def test_flush_on_empty_buffer_immediate():
    sim = Simulator()
    wb, _ = make(sim)
    done = []

    def p(sim):
        yield wb.flush()
        done.append(sim.now)

    sim.process(p(sim))
    sim.run()
    assert done == [0]


def test_processor_not_stalled_by_puts():
    """Global writes must not stall the issuing process (the whole point)."""
    sim = Simulator()
    wb, _ = make(sim, ack_delay=50)
    times = []

    def p(sim):
        for i in range(5):
            yield wb.put(i, i)
            times.append(sim.now)
            yield sim.timeout(1)

    sim.process(p(sim))
    sim.run()
    assert times == [0, 1, 2, 3, 4]


def test_finite_capacity_blocks_put():
    sim = Simulator()
    wb, ni = make(sim, ack_delay=10, capacity=2)
    log = []

    def p(sim):
        yield wb.put(1, 1)
        yield wb.put(2, 2)
        log.append(("two buffered", sim.now))
        yield wb.put(3, 3)  # blocks until the first ack at t=10
        log.append(("third accepted", sim.now))

    sim.process(p(sim))
    sim.run()
    assert ("two buffered", 0) in log
    assert ("third accepted", 10) in log


def test_flush_counts_writes_accepted_while_full():
    """A flush issued while a put is blocked must cover that put too."""
    sim = Simulator()
    wb, ni = make(sim, ack_delay=10, capacity=1)
    done = []

    def writer(sim):
        yield wb.put(1, 1)
        yield wb.put(2, 2)  # blocked until t=10

    def flusher(sim):
        yield sim.timeout(1)
        yield wb.flush()
        done.append(sim.now)

    sim.process(writer(sim))
    sim.process(flusher(sim))
    sim.run()
    assert done == [20]  # second write issues at 10, acks at 20


def test_occupancy_stat_tracks_levels():
    sim = Simulator()
    wb, ni = make(sim, ack_delay=10)

    def p(sim):
        wb.put(1, 1)
        yield sim.timeout(0)

    sim.process(p(sim))
    sim.run()
    assert wb.occupancy.max == 1
    assert wb.pending_count == 0


def test_stats_counters():
    sim = Simulator()
    wb, ni = make(sim, ack_delay=1)

    def p(sim):
        wb.put(1, 1)
        wb.put(2, 2)
        yield wb.flush()

    sim.process(p(sim))
    sim.run()
    assert wb.stats.counters["writes"] == 2
    assert wb.stats.counters["retired"] == 2
    assert wb.stats.counters["flushes"] == 1


def test_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        WriteBuffer(sim, lambda a, v, i: None, capacity=0)
