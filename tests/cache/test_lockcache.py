"""Unit tests for the fully-associative lock cache."""

import pytest

from repro.cache import LockCache, LockCacheFullError, LockMode


def test_allocate_and_lookup():
    lc = LockCache(4, 4)
    line = lc.allocate(10)
    assert line.block == 10
    assert lc.lookup(10) is line
    assert len(lc) == 1


def test_allocate_idempotent():
    lc = LockCache(4, 4)
    assert lc.allocate(1) is lc.allocate(1)
    assert len(lc) == 1


def test_eviction_of_unpinned():
    lc = LockCache(2, 4)
    a = lc.allocate(1)
    lc.allocate(2)
    a.lock = LockMode.NONE  # unpinned
    lc.peek(2).lock = LockMode.WRITE  # pinned
    lc.allocate(3)  # must evict block 1
    assert lc.peek(1) is None
    assert lc.peek(2) is not None
    assert lc.stats.counters["evictions"] == 1


def test_full_of_pinned_raises():
    lc = LockCache(2, 4)
    lc.allocate(1).lock = LockMode.WRITE
    lc.allocate(2).lock = LockMode.WAIT_READ
    with pytest.raises(LockCacheFullError):
        lc.allocate(3)


def test_release_frees_entry():
    lc = LockCache(1, 4)
    lc.allocate(5).lock = LockMode.WRITE
    lc.release(5)
    assert len(lc) == 0
    lc.allocate(6)  # no error


def test_held_and_waiting_lists():
    lc = LockCache(4, 4)
    lc.allocate(1).lock = LockMode.READ
    lc.allocate(2).lock = LockMode.WAIT_WRITE
    lc.allocate(3).lock = LockMode.WRITE
    assert sorted(lc.held_locks()) == [1, 3]
    assert lc.waiting_locks() == [2]


def test_capacity_validation():
    with pytest.raises(ValueError):
        LockCache(0, 4)
