"""Reprs of kernel objects: state, time, and name must be readable.

These strings end up in hang diagnoses and assertion messages, so their
shape is pinned — including the canceled state, which the original repr
could not render.
"""

from repro.sim.core import Event, Process, Simulator


def test_event_repr_tracks_state():
    sim = Simulator()
    ev = Event(sim, name="grant")
    assert repr(ev) == "<Event grant pending t=0>"
    ev.succeed(delay=5)
    assert "grant triggered" in repr(ev)
    sim.run()
    assert "grant processed" in repr(ev) and "t=5" in repr(ev)


def test_event_repr_canceled():
    sim = Simulator()
    ev = Event(sim, name="retry-timer")
    ev.succeed(delay=10)
    ev.cancel()
    assert "retry-timer canceled" in repr(ev)


def test_anonymous_event_repr_uses_identity():
    sim = Simulator()
    ev = Event(sim)
    assert hex(id(ev)) in repr(ev)


def test_timeout_repr_shows_delay():
    sim = Simulator()
    t = sim.timeout(7)
    assert repr(t) == "<Timeout delay=7 triggered t=0>"
    sim.run()
    assert "processed" in repr(t) and "t=7" in repr(t)


def test_process_repr_alive_and_waiting():
    sim = Simulator()

    def body():
        yield sim.timeout(3)

    proc = Process(sim, body(), name="worker")
    assert repr(proc) == "<Process worker alive t=0>"
    sim.step()  # bootstrap: the process runs up to its first yield
    assert "waiting_on=Timeout" in repr(proc)
    sim.run()
    assert "worker processed" in repr(proc)


def test_process_repr_names_awaited_event():
    sim = Simulator()
    gate = Event(sim, name="gate")

    def body():
        yield gate

    proc = Process(sim, body(), name="waiter")
    sim.step()
    assert "waiting_on=gate" in repr(proc)
    gate.succeed()
    sim.run()
    assert proc.is_alive is False
