"""Slotted-calendar discipline: structure unit tests and kernel pins.

The :class:`repro.sim.core._SlottedCalendar` must reproduce the binary
heap's ``(time, seq)`` total order exactly — the machine-level pin is
``test_kernel_equivalence.py``; these tests exercise the structure
directly (overflow spill, window clamp, auto-resize, cancellation sweep)
against a ``heapq`` oracle, plus the kernel-facing behaviors: the
``REPRO_KERNEL`` environment selector and the ``max_events`` accounting
parity across all three disciplines on a cancel-heavy calendar.
"""

import heapq

import numpy as np
import pytest

from repro.sim.core import CALENDARS, Simulator, _env_calendar, _SlottedCalendar


class _Ev:
    """Entry payload stub: the calendar only ever reads ``_state``."""

    __slots__ = ("_state",)

    def __init__(self):
        self._state = 0  # _PENDING


def _entries(rng, n, scale):
    return [(float(rng.random() * scale), i, _Ev()) for i in range(n)]


def _drain(cal):
    out = []
    while True:
        head = cal.head()
        if head is None:
            break
        out.append(cal.pop_head())
    return out


# -- structure vs. heapq oracle ---------------------------------------------
@pytest.mark.parametrize("width,nbuckets", [(4.0, 64), (0.01, 4), (1000.0, 8)])
@pytest.mark.parametrize("scale", [1.0, 100.0, 1e6])
def test_fill_then_drain_matches_heap(width, nbuckets, scale):
    """Bulk fill, bulk drain: the pop sequence is the sorted order, for any
    (width, bucket-count, time-scale) combination — including widths that
    force every entry through the overflow heap and widths that pile the
    whole schedule into one bucket."""
    rng = np.random.default_rng(42)
    entries = _entries(rng, 500, scale)
    cal = _SlottedCalendar(width=width, nbuckets=nbuckets)
    for e in entries:
        cal.push(e)
    assert len(cal) == len(entries)
    got = _drain(cal)
    assert got == sorted(entries, key=lambda e: e[:2])
    assert len(cal) == 0


@pytest.mark.parametrize("seed", range(8))
def test_interleaved_push_pop_matches_heap(seed):
    """Random interleaving of pushes and pops, with pushed times anchored at
    the last popped time (as the kernel guarantees): every pop agrees with
    a shadow heapq."""
    rng = np.random.default_rng(seed)
    cal = _SlottedCalendar(width=float(rng.random() * 10 + 0.1), nbuckets=8)
    shadow = []
    now, seq = 0.0, 0
    for _ in range(2000):
        if shadow and rng.random() < 0.45:
            got = cal.pop_head() if cal.head() is not None else None
            want = heapq.heappop(shadow)
            assert got == want
            now = want[0]
        else:
            seq += 1
            entry = (now + float(rng.random() * 50), seq, _Ev())
            cal.push(entry)
            heapq.heappush(shadow, entry)
        assert len(cal) == len(shadow)
    while shadow:
        assert cal.head() is not None
        assert cal.pop_head() == heapq.heappop(shadow)
    assert cal.head() is None


def test_overflow_spill_and_migration():
    """Entries past the bucket window spill to overflow and still pop in
    global order once the window reaches them."""
    cal = _SlottedCalendar(width=1.0, nbuckets=4)
    near = [(float(t), i, _Ev()) for i, t in enumerate([0.5, 1.5, 2.5, 3.5])]
    far = [(float(t), 100 + i, _Ev()) for i, t in enumerate([50.0, 99.0, 1e6])]
    for e in far + near:
        cal.push(e)
    assert len(cal.overflow) == len(far)
    got = _drain(cal)
    assert got == sorted(near + far, key=lambda e: e[:2])


def test_auto_resize_grows_buckets():
    """Pushing past _GROW_AT entries/bucket doubles the array without
    disturbing the order."""
    cal = _SlottedCalendar(width=1000.0, nbuckets=4)
    rng = np.random.default_rng(0)
    entries = _entries(rng, 4 * cal._GROW_AT + 8, 10.0)
    for e in entries:
        cal.push(e)
    assert cal.nbuckets > 4
    assert _drain(cal) == sorted(entries, key=lambda e: e[:2])


def test_drop_canceled_sweeps_buckets_and_overflow():
    cal = _SlottedCalendar(width=1.0, nbuckets=4)
    entries = [(float(i) * 0.6, i, _Ev()) for i in range(20)]
    entries += [(1000.0 + i, 100 + i, _Ev()) for i in range(6)]  # overflow
    for e in entries:
        cal.push(e)
    victims = [e for e in entries if e[1] % 2 == 0]
    for e in victims:
        e[2]._state = 3  # _CANCELED
    dropped = cal.drop_canceled()
    assert dropped == len(victims)
    live = [e for e in entries if e[1] % 2 == 1]
    assert len(cal) == len(live)
    assert _drain(cal) == sorted(live, key=lambda e: e[:2])


# -- kernel integration ------------------------------------------------------
def test_slotted_simulator_peek_step_pending():
    sim = Simulator(calendar="slotted")
    assert sim.calendar == "slotted"
    assert sim.fast_path
    order = []
    t1 = sim.timeout(5.0)
    t1.callbacks.append(lambda ev: order.append("t5"))
    t2 = sim.timeout(2.0)
    t2.callbacks.append(lambda ev: order.append("t2"))
    victim = sim.timeout(1.0)
    victim.cancel()
    assert sim.pending_live() == 2
    assert sim.peek() == 2.0  # canceled head discarded
    assert sim.step()
    assert sim.now == 2.0 and order == ["t2"]
    assert sim.peek() == 5.0
    sim.run()
    assert order == ["t2", "t5"] and sim.now == 5.0
    assert sim.peek() == float("inf")


def test_slotted_runs_processes_with_zero_delay_lane():
    """Zero-delay events ride the FIFO lane under the slotted discipline
    too; same-instant sequencing must match the scheduling order."""
    sim = Simulator(calendar="slotted")
    log = []

    def child(tag):
        yield sim.timeout(0)
        log.append(tag)

    def root():
        sim.process(child("a"))
        sim.process(child("b"))
        yield sim.timeout(3.0)
        log.append("later")

    sim.process(root())
    sim.run()
    assert log == ["a", "b", "later"]


def test_env_selects_calendar(monkeypatch):
    for name in CALENDARS:
        monkeypatch.setenv("REPRO_KERNEL", name)
        assert _env_calendar() == name
        assert Simulator().calendar == name
    monkeypatch.setenv("REPRO_KERNEL", "warp-drive")
    assert _env_calendar() == "fast"  # unknown values fall back
    monkeypatch.delenv("REPRO_KERNEL")
    assert _env_calendar() == "fast"


def test_explicit_calendar_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "heap")
    assert Simulator(calendar="slotted").calendar == "slotted"


def test_conflicting_discipline_rejected():
    with pytest.raises(ValueError):
        Simulator(fast_path=True, calendar="heap")
    with pytest.raises(ValueError):
        Simulator(calendar="wheel-of-time")


# -- max_events accounting pin (satellite: bounded-run asymmetry fix) --------
def _cancel_heavy(sim):
    """25 live timeouts interleaved with 25 canceled ones (plus a canceled
    same-instant pair), the regime where bounded-run accounting diverged:
    a discipline that counts *popped* entries instead of *processed* events
    stops early on this calendar."""
    victims = [sim.timeout(0)]
    for i in range(25):
        sim.timeout(0.5 * i + 0.5)
        victims.append(sim.timeout(0.5 * i + 0.7))
    for v in victims:
        v.cancel()


@pytest.mark.parametrize("max_events", [1, 7, 25, 100])
def test_max_events_accounting(max_events):
    """All three disciplines stop after the *same* processed event: equal
    processed counts, equal clock, equal live-pending — canceled entries
    never consume budget anywhere."""
    stops = []
    for calendar in CALENDARS:
        sim = Simulator(calendar=calendar)
        _cancel_heavy(sim)
        sim.run(max_events=max_events)
        stops.append((calendar, sim.events_processed, sim.now, sim.pending_live()))
    ref = stops[0][1:]
    assert ref[0] == min(max_events, 25)
    for calendar, *got in stops[1:]:
        assert tuple(got) == ref, f"{calendar} diverged from heap: {got} != {ref}"


def test_max_events_resume_continues_identically():
    """A bounded run followed by a drain ends in the same state as one
    unbounded run, per discipline and across disciplines."""
    finals = []
    for calendar in CALENDARS:
        sim = Simulator(calendar=calendar)
        _cancel_heavy(sim)
        sim.run(max_events=10)
        sim.run()
        finals.append((sim.events_processed, sim.now))
    assert finals.count(finals[0]) == len(finals)
    assert finals[0] == (25, 12.5)
