"""Unit tests for statistics collectors."""

import math

import pytest

from repro.sim import Counter, Histogram, StatSet, Tally, TimeWeighted


def test_counter_add_and_get():
    c = Counter()
    c.add("msgs")
    c.add("msgs", 4)
    assert c.get("msgs") == 5
    assert c["msgs"] == 5
    assert c.get("absent") == 0


def test_counter_total_and_merge():
    a, b = Counter(), Counter()
    a.add("x", 3)
    b.add("x", 2)
    b.add("y", 7)
    a.merge(b)
    assert a.as_dict() == {"x": 5, "y": 7}
    assert a.total() == 12


def test_counter_merge_with_itself_doubles():
    c = Counter()
    c.add("x", 3)
    c.add("y", 1)
    c.merge(c)
    assert c.as_dict() == {"x": 6, "y": 2}


def test_tally_mean_variance():
    t = Tally()
    for x in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
        t.observe(x)
    assert t.n == 8
    assert t.mean == pytest.approx(5.0)
    assert t.stdev == pytest.approx(math.sqrt(32 / 7))
    assert t.min == 2.0 and t.max == 9.0


def test_tally_empty_defaults():
    t = Tally()
    assert t.mean == 0.0
    assert t.variance == 0.0


def test_tally_merge_matches_pooled():
    a, b, ref = Tally(), Tally(), Tally()
    for x in (1.0, 2.0, 3.0):
        a.observe(x)
        ref.observe(x)
    for x in (10.0, 20.0):
        b.observe(x)
        ref.observe(x)
    a.merge(b)
    assert a.n == ref.n
    assert a.mean == pytest.approx(ref.mean)
    assert a.variance == pytest.approx(ref.variance)
    assert a.min == ref.min and a.max == ref.max


def test_tally_merge_into_empty():
    a, b = Tally(), Tally()
    b.observe(5.0)
    a.merge(b)
    assert a.n == 1 and a.mean == 5.0


def test_time_weighted_average():
    tw = TimeWeighted()
    tw.set(10, 2.0)  # level 0 for [0,10)
    tw.set(20, 4.0)  # level 2 for [10,20)
    # level 4 for [20,30)
    assert tw.average(30) == pytest.approx((0 * 10 + 2 * 10 + 4 * 10) / 30)
    assert tw.max == 4.0


def test_time_weighted_adjust():
    tw = TimeWeighted()
    tw.adjust(5, +3)
    tw.adjust(10, -1)
    assert tw.level == 2
    assert tw.average(10) == pytest.approx((0 * 5 + 3 * 5) / 10)


def test_time_weighted_zero_elapsed_returns_current_level():
    # Before any time passes the average degenerates to the level itself.
    tw = TimeWeighted(start_time=5.0, level=3.0)
    assert tw.average() == 3.0
    assert tw.average(5.0) == 3.0
    tw.set(5.0, 7.0)  # zero-width interval contributes no area
    assert tw.average(5.0) == 7.0


def test_time_weighted_rejects_time_travel():
    tw = TimeWeighted()
    tw.set(10, 1.0)
    with pytest.raises(ValueError):
        tw.set(5, 2.0)


def test_histogram_bins():
    h = Histogram(0, 10, 5)
    for x in (0.5, 1.5, 3.0, 9.9, 11.0, -1.0):
        h.observe(x)
    assert h.bins[0] == 2  # 0.5, 1.5
    assert h.bins[1] == 1  # 3.0
    assert h.bins[4] == 1  # 9.9
    assert h.overflow == 1
    assert h.underflow == 1
    assert h.n == 6


def test_histogram_fraction():
    h = Histogram(0, 10, 10)
    for x in range(10):
        h.observe(x + 0.5)
    assert h.fraction_at_or_below(4.9) == pytest.approx(0.5)


def test_histogram_boundary_values():
    h = Histogram(0, 10, 5)
    h.observe(0.0)  # exactly lo -> first bin, not underflow
    h.observe(10.0)  # exactly hi -> overflow bin
    assert h.bins[0] == 1
    assert h.underflow == 0
    assert h.overflow == 1
    assert h.fraction_at_or_below(-0.1) == 0.0
    assert h.fraction_at_or_below(100.0) == pytest.approx(0.5)


def test_histogram_validation():
    with pytest.raises(ValueError):
        Histogram(0, 0, 5)
    with pytest.raises(ValueError):
        Histogram(0, 10, 0)


def test_statset_creates_tallies_lazily():
    s = StatSet()
    s.observe("latency", 3.0)
    s.observe("latency", 5.0)
    assert s.tally("latency").mean == pytest.approx(4.0)
    s.counters.add("msgs")
    assert s.counters["msgs"] == 1
