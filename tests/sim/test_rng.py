"""Unit tests for deterministic RNG streams."""

import numpy as np
import pytest

from repro.sim import RngStreams


def test_same_seed_same_stream():
    a = RngStreams(42).stream("node0:refs")
    b = RngStreams(42).stream("node0:refs")
    assert np.array_equal(a.random(10), b.random(10))


def test_different_names_differ():
    s = RngStreams(42)
    a = s.stream("node0:refs").random(10)
    b = s.stream("node1:refs").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngStreams(1).stream("x").random(10)
    b = RngStreams(2).stream("x").random(10)
    assert not np.array_equal(a, b)


def test_stream_cached_not_restarted():
    s = RngStreams(7)
    first = s.stream("w").random(5)
    second = s.stream("w").random(5)
    # Same generator object continues; draws must differ from the start.
    assert not np.array_equal(first, second)


def test_node_stream_helper():
    s = RngStreams(3)
    assert np.array_equal(
        s.node_stream(4, "tasks").random(4),
        RngStreams(3).stream("node4:tasks").random(4),
    )


def test_fork_independent_but_deterministic():
    a = RngStreams(9).fork("rep1").stream("x").random(8)
    b = RngStreams(9).fork("rep1").stream("x").random(8)
    c = RngStreams(9).fork("rep2").stream("x").random(8)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RngStreams(-1)
