"""Unit tests for stores, gates, resources, and semaphores."""

import pytest

from repro.sim import Simulator, Store, Gate, Resource, Semaphore, SimulationError


# ---------------------------------------------------------------- Store


def test_store_put_then_get_immediate():
    sim = Simulator()
    store = Store(sim)
    got = []

    def p(sim):
        yield store.put("x")
        v = yield store.get()
        got.append(v)

    sim.process(p(sim))
    sim.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim):
        v = yield store.get()
        got.append((sim.now, v))

    def putter(sim):
        yield sim.timeout(8)
        yield store.put("late")

    sim.process(getter(sim))
    sim.process(putter(sim))
    sim.run()
    assert got == [(8, "late")]


def test_store_fifo_ordering_of_items():
    sim = Simulator()
    store = Store(sim)
    got = []

    def p(sim):
        for x in (1, 2, 3):
            yield store.put(x)
        for _ in range(3):
            v = yield store.get()
            got.append(v)

    sim.process(p(sim))
    sim.run()
    assert got == [1, 2, 3]


def test_store_fifo_ordering_of_getters():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim, tag):
        v = yield store.get()
        got.append((tag, v))

    def putter(sim):
        yield sim.timeout(1)
        yield store.put("a")
        yield store.put("b")

    sim.process(getter(sim, "first"))
    sim.process(getter(sim, "second"))
    sim.process(putter(sim))
    sim.run()
    assert got == [("first", "a"), ("second", "b")]


def test_bounded_store_blocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer(sim):
        yield store.put("a")
        log.append(("put-a", sim.now))
        yield store.put("b")  # blocks until consumer takes "a"
        log.append(("put-b", sim.now))

    def consumer(sim):
        yield sim.timeout(10)
        v = yield store.get()
        log.append(("got", v, sim.now))

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert ("put-a", 0) in log
    assert ("got", "a", 10) in log
    assert ("put-b", 10) in log


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_try_put_and_try_get():
    sim = Simulator()
    store = Store(sim, capacity=1)
    assert store.try_put(1) is True
    assert store.try_put(2) is False
    ok, v = store.try_get()
    assert (ok, v) == (True, 1)
    ok, v = store.try_get()
    assert ok is False


def test_store_len_tracks_items():
    sim = Simulator()
    store = Store(sim)
    store.try_put("a")
    store.try_put("b")
    assert len(store) == 2


# ---------------------------------------------------------------- Gate


def test_gate_releases_all_waiters():
    sim = Simulator()
    gate = Gate(sim)
    woke = []

    def waiter(sim, tag):
        yield gate.wait()
        woke.append((tag, sim.now))

    def opener(sim):
        yield sim.timeout(5)
        gate.open()

    for tag in "abc":
        sim.process(waiter(sim, tag))
    sim.process(opener(sim))
    sim.run()
    assert sorted(woke) == [("a", 5), ("b", 5), ("c", 5)]


def test_open_gate_passes_through():
    sim = Simulator()
    gate = Gate(sim, open=True)
    woke = []

    def waiter(sim):
        yield gate.wait()
        woke.append(sim.now)

    sim.process(waiter(sim))
    sim.run()
    assert woke == [0]


def test_gate_close_rearms():
    sim = Simulator()
    gate = Gate(sim, open=True)
    gate.close()
    woke = []

    def waiter(sim):
        yield gate.wait()
        woke.append(sim.now)

    def opener(sim):
        yield sim.timeout(3)
        gate.open()

    sim.process(waiter(sim))
    sim.process(opener(sim))
    sim.run()
    assert woke == [3]


# ---------------------------------------------------------------- Resource


def test_resource_mutual_exclusion_and_fifo():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(sim, tag, hold):
        yield res.request()
        order.append((tag, "in", sim.now))
        yield sim.timeout(hold)
        order.append((tag, "out", sim.now))
        res.release()

    sim.process(user(sim, "a", 10))
    sim.process(user(sim, "b", 5))
    sim.run()
    assert order == [
        ("a", "in", 0),
        ("a", "out", 10),
        ("b", "in", 10),
        ("b", "out", 15),
    ]


def test_resource_capacity_two_overlaps():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    entered = []

    def user(sim, tag):
        yield res.request()
        entered.append((tag, sim.now))
        yield sim.timeout(10)
        res.release()

    for tag in "abc":
        sim.process(user(sim, tag))
    sim.run()
    assert entered == [("a", 0), ("b", 0), ("c", 10)]


def test_resource_release_without_request_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_queue_length():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder(sim):
        yield res.request()
        yield sim.timeout(100)
        res.release()

    def waiter(sim):
        yield res.request()
        res.release()

    sim.process(holder(sim))
    sim.process(waiter(sim))
    sim.process(waiter(sim))
    sim.run(until=1)
    assert res.queue_length == 2


# ---------------------------------------------------------------- Semaphore


def test_semaphore_initial_count_consumed():
    sim = Simulator()
    sem = Semaphore(sim, initial=2)
    got = []

    def p(sim, tag):
        yield sem.acquire()
        got.append((tag, sim.now))

    for tag in "abc":
        sim.process(p(sim, tag))

    def releaser(sim):
        yield sim.timeout(5)
        sem.release()

    sim.process(releaser(sim))
    sim.run()
    assert got == [("a", 0), ("b", 0), ("c", 5)]


def test_semaphore_release_multiple():
    sim = Simulator()
    sem = Semaphore(sim)
    got = []

    def p(sim, tag):
        yield sem.acquire()
        got.append(tag)

    for tag in "ab":
        sim.process(p(sim, tag))
    sem.release(2)
    sim.run()
    assert got == ["a", "b"]


def test_semaphore_negative_initial_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Semaphore(sim, initial=-1)
