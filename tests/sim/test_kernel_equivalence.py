"""Differential pin: the zero-delay-lane fast path is cycle-identical to heap.

The kernel fast path (``Simulator(fast_path=True)``) reorders *nothing*: it
only changes which container holds a due event.  These tests enforce that
claim the strongest way available — replay fuzzer-generated programs under
both scheduling disciplines and require bit-identical ``RunMetrics.to_json()``
and identical trace event streams, including runs with latency jitter and
fault injection (the cancel-heavy regime that exercises lazy cancellation and
calendar compaction).

Any divergence here means the merged pop rule broke global (time, seq) FIFO
order and every performance number in BENCH_PR4.json is measuring a
*different simulation*, not a faster one.
"""

import itertools
import json

import numpy as np
import pytest

import repro.network.message as msgmod
from repro.faults import FaultSpec
from repro.verify.fuzz import gen_program, run_program

SEEDS = [0, 1, 2, 3]
PROTOCOLS = ["wbi", "primitives", "writeupdate"]


def _replay(seed, protocol, fast_path, jitter=0.0, faults=None, trace_path=None):
    """One deterministic fuzzer replay; returns (oracle_result, metrics)."""
    # Message ids come from a module-level counter; reset it so the two
    # disciplines label messages identically and traces can be diffed.
    msgmod._msg_ids = itertools.count()
    program = gen_program(np.random.default_rng(seed))
    captured = {}
    result = run_program(
        program,
        protocol=protocol,
        model="bc",
        seed=seed,
        jitter=jitter,
        faults=faults,
        fast_path=fast_path,
        trace_path=str(trace_path) if trace_path is not None else None,
        on_machine=lambda m: captured.update(metrics=m.metrics().to_json()),
    )
    return result, captured["metrics"]


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("seed", SEEDS)
def test_metrics_bit_identical(seed, protocol):
    res_heap, m_heap = _replay(seed, protocol, fast_path=False)
    res_fast, m_fast = _replay(seed, protocol, fast_path=True)
    assert res_heap is None and res_fast is None
    assert json.dumps(m_heap, sort_keys=True) == json.dumps(m_fast, sort_keys=True)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_metrics_identical_under_jitter(protocol):
    """Jitter perturbs positive delays only; both disciplines see the same
    perturbed delays in the same order."""
    res_heap, m_heap = _replay(7, protocol, fast_path=False, jitter=0.3)
    res_fast, m_fast = _replay(7, protocol, fast_path=True, jitter=0.3)
    assert res_heap == res_fast
    assert json.dumps(m_heap, sort_keys=True) == json.dumps(m_fast, sort_keys=True)


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_metrics_identical_under_faults(seed):
    """Fault injection is the cancel-heavy regime: retry timers are armed and
    canceled in bulk, driving lazy cancellation and compaction on the fast
    path.  Outcome and metrics must still match the heap discipline exactly."""
    spec = FaultSpec(drop_prob=0.02, seed=seed)
    res_heap, m_heap = _replay(seed, "primitives", fast_path=False, faults=spec)
    res_fast, m_fast = _replay(seed, "primitives", fast_path=True, faults=spec)
    assert res_heap == res_fast
    assert json.dumps(m_heap, sort_keys=True) == json.dumps(m_fast, sort_keys=True)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_trace_streams_identical(protocol, tmp_path):
    """Stronger than metrics: the full trace event stream (every message,
    state transition and kernel instant, with timestamps and sequence) must
    be byte-identical between disciplines."""
    heap_trace = tmp_path / "heap.jsonl"
    fast_trace = tmp_path / "fast.jsonl"
    res_heap, m_heap = _replay(11, protocol, fast_path=False, trace_path=heap_trace)
    res_fast, m_fast = _replay(11, protocol, fast_path=True, trace_path=fast_trace)
    assert res_heap == res_fast
    assert json.dumps(m_heap, sort_keys=True) == json.dumps(m_fast, sort_keys=True)
    heap_lines = heap_trace.read_text().splitlines()
    fast_lines = fast_trace.read_text().splitlines()
    assert len(heap_lines) == len(fast_lines)
    for i, (a, b) in enumerate(zip(heap_lines, fast_lines)):
        assert a == b, f"trace diverges at event {i}:\n  heap: {a}\n  fast: {b}"


def test_trace_streams_identical_with_faults(tmp_path):
    heap_trace = tmp_path / "heap.jsonl"
    fast_trace = tmp_path / "fast.jsonl"
    spec = FaultSpec(drop_prob=0.02, seed=5)
    res_heap, _ = _replay(5, "primitives", fast_path=False, faults=spec,
                          trace_path=heap_trace)
    res_fast, _ = _replay(5, "primitives", fast_path=True, faults=spec,
                          trace_path=fast_trace)
    assert res_heap == res_fast
    assert heap_trace.read_text() == fast_trace.read_text()
