"""Differential pin: all calendar disciplines are cycle-identical.

The kernel's alternate scheduling disciplines — the zero-delay-lane fast
path (``Simulator(calendar="fast")``) and the slotted calendar queue
(``Simulator(calendar="slotted")``) — reorder *nothing*: they only change
which container holds a due event.  These tests enforce that claim the
strongest way available — replay fuzzer-generated programs under every
discipline and require bit-identical ``RunMetrics.to_json()`` and
identical trace event streams, including runs with latency jitter and
fault injection (the cancel-heavy regime that exercises lazy cancellation
and calendar compaction).

Any divergence here means a discipline broke global (time, seq) FIFO
order and every performance number in BENCH_PR4.json / BENCH_PR9.json is
measuring a *different simulation*, not a faster one.
"""

import itertools
import json

import numpy as np
import pytest

import repro.network.message as msgmod
from repro.faults import FaultSpec
from repro.sim.core import CALENDARS
from repro.verify.fuzz import gen_program, run_program

SEEDS = [0, 1, 2, 3]
PROTOCOLS = ["wbi", "primitives", "writeupdate"]
# The heap discipline is the referee; every other discipline is diffed
# against it below.
ALTERNATES = [c for c in CALENDARS if c != "heap"]


def _replay(seed, protocol, calendar, jitter=0.0, faults=None, trace_path=None):
    """One deterministic fuzzer replay; returns (oracle_result, metrics)."""
    # Message ids come from a module-level counter; reset it so the
    # disciplines label messages identically and traces can be diffed.
    msgmod._msg_ids = itertools.count()
    program = gen_program(np.random.default_rng(seed))
    captured = {}
    result = run_program(
        program,
        protocol=protocol,
        model="bc",
        seed=seed,
        jitter=jitter,
        faults=faults,
        calendar=calendar,
        trace_path=str(trace_path) if trace_path is not None else None,
        on_machine=lambda m: captured.update(metrics=m.metrics().to_json()),
    )
    return result, captured["metrics"]


@pytest.mark.parametrize("calendar", ALTERNATES)
@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("seed", SEEDS)
def test_metrics_bit_identical(seed, protocol, calendar):
    res_heap, m_heap = _replay(seed, protocol, calendar="heap")
    res_alt, m_alt = _replay(seed, protocol, calendar=calendar)
    assert res_heap is None and res_alt is None
    assert json.dumps(m_heap, sort_keys=True) == json.dumps(m_alt, sort_keys=True)


@pytest.mark.parametrize("calendar", ALTERNATES)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_metrics_identical_under_jitter(protocol, calendar):
    """Jitter perturbs positive delays only; all disciplines see the same
    perturbed delays in the same order."""
    res_heap, m_heap = _replay(7, protocol, calendar="heap", jitter=0.3)
    res_alt, m_alt = _replay(7, protocol, calendar=calendar, jitter=0.3)
    assert res_heap == res_alt
    assert json.dumps(m_heap, sort_keys=True) == json.dumps(m_alt, sort_keys=True)


@pytest.mark.parametrize("calendar", ALTERNATES)
@pytest.mark.parametrize("seed", SEEDS[:2])
def test_metrics_identical_under_faults(seed, calendar):
    """Fault injection is the cancel-heavy regime: retry timers are armed and
    canceled in bulk, driving lazy cancellation and compaction on the fast
    path and ``drop_canceled`` sweeps on the slotted calendar.  Outcome and
    metrics must still match the heap discipline exactly."""
    spec = FaultSpec(drop_prob=0.02, seed=seed)
    res_heap, m_heap = _replay(seed, "primitives", calendar="heap", faults=spec)
    res_alt, m_alt = _replay(seed, "primitives", calendar=calendar, faults=spec)
    assert res_heap == res_alt
    assert json.dumps(m_heap, sort_keys=True) == json.dumps(m_alt, sort_keys=True)


@pytest.mark.parametrize("calendar", ALTERNATES)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_trace_streams_identical(protocol, calendar, tmp_path):
    """Stronger than metrics: the full trace event stream (every message,
    state transition and kernel instant, with timestamps and sequence) must
    be byte-identical between disciplines."""
    heap_trace = tmp_path / "heap.jsonl"
    alt_trace = tmp_path / f"{calendar}.jsonl"
    res_heap, m_heap = _replay(11, protocol, calendar="heap", trace_path=heap_trace)
    res_alt, m_alt = _replay(11, protocol, calendar=calendar, trace_path=alt_trace)
    assert res_heap == res_alt
    assert json.dumps(m_heap, sort_keys=True) == json.dumps(m_alt, sort_keys=True)
    heap_lines = heap_trace.read_text().splitlines()
    alt_lines = alt_trace.read_text().splitlines()
    assert len(heap_lines) == len(alt_lines)
    for i, (a, b) in enumerate(zip(heap_lines, alt_lines)):
        assert a == b, f"trace diverges at event {i}:\n  heap: {a}\n  {calendar}: {b}"


@pytest.mark.parametrize("calendar", ALTERNATES)
def test_trace_streams_identical_with_faults(calendar, tmp_path):
    heap_trace = tmp_path / "heap.jsonl"
    alt_trace = tmp_path / f"{calendar}.jsonl"
    spec = FaultSpec(drop_prob=0.02, seed=5)
    res_heap, _ = _replay(5, "primitives", calendar="heap", faults=spec,
                          trace_path=heap_trace)
    res_alt, _ = _replay(5, "primitives", calendar=calendar, faults=spec,
                         trace_path=alt_trace)
    assert res_heap == res_alt
    assert heap_trace.read_text() == alt_trace.read_text()
