"""Unit tests for the kernel fast path: the zero-delay lane, lazy
cancellation + compaction, ``pending_live``, and the O(1) condition fixes.

The differential suite (``test_kernel_equivalence.py``) pins whole-machine
equivalence; these tests pin each mechanism in isolation so a regression
points at the broken primitive instead of "traces diverged somewhere".
"""

import pytest

from repro.sim.core import (
    _COMPACT_MIN,
    AllOf,
    AnyOf,
    Event,
    SimulationError,
    Simulator,
)


def both_disciplines(fn):
    return pytest.mark.parametrize("fast", [False, True], ids=["heap", "fast"])(fn)


# ------------------------------------------------------------- lane ordering


@both_disciplines
def test_zero_delay_events_fifo_across_containers(fast):
    """Zero-delay events interleaved with due heap events must fire in
    global schedule (seq) order, not container order."""
    sim = Simulator(fast_path=fast)
    order = []

    def make(tag):
        def cb(ev):
            order.append(tag)
        return cb

    # Alternate: a future event due at t=1, then zero-delay chains from it.
    def driver(sim):
        yield sim.timeout(1)
        for i in range(4):
            ev = sim.timeout(0)
            ev.callbacks.append(make(f"z{i}"))
            ev2 = sim.timeout(0)
            ev2.callbacks.append(make(f"y{i}"))
        yield sim.timeout(0)

    sim.process(driver(sim))
    sim.run()
    assert order == ["z0", "y0", "z1", "y1", "z2", "y2", "z3", "y3"]


@both_disciplines
def test_same_instant_heap_and_lane_interleave_by_seq(fast):
    """An event scheduled with delay d that lands at ``now`` once the clock
    reaches it must still order by seq against zero-delay events scheduled
    at that instant: the merged pop rule compares (time, seq) exactly."""
    sim = Simulator(fast_path=fast)
    order = []

    def cb(tag):
        def _cb(ev):
            order.append(tag)
        return _cb

    def driver(sim):
        # At t=0 schedule A for t=2 (heap).  At t=2 schedule zero-delay B
        # *after* A fired and zero-delay C from inside A's callback.
        a = sim.timeout(2)
        a.callbacks.append(cb("A"))
        yield sim.timeout(2)
        b = sim.timeout(0)
        b.callbacks.append(cb("B"))
        c = sim.timeout(0)
        c.callbacks.append(cb("C"))
        yield sim.timeout(0)

    sim.process(driver(sim))
    sim.run()
    assert order == ["A", "B", "C"]


@both_disciplines
def test_run_until_with_pending_zero_delay_work(fast):
    """``run(until=now)`` must still drain lane entries due exactly at
    ``until`` (inclusive), and a second run with until < now returns
    without touching the calendar."""
    sim = Simulator(fast_path=fast)
    fired = []
    sim.timeout(5).callbacks.append(lambda ev: fired.append("t5"))
    sim.run(until=5)
    assert fired == ["t5"] and sim.now == 5
    sim.timeout(0).callbacks.append(lambda ev: fired.append("z"))
    sim.run(until=3)  # until already in the past: nothing may fire
    assert fired == ["t5"]
    sim.run(until=5)
    assert fired == ["t5", "z"]


# ------------------------------------------------ cancellation + compaction


@both_disciplines
def test_cancel_tracks_canceled_pending_and_pending_live(fast):
    sim = Simulator(fast_path=fast)
    evs = [sim.timeout(10 + i) for i in range(8)]
    assert sim.pending_live() == 8
    for ev in evs[:3]:
        ev.cancel()
    assert sim.canceled_pending == 3
    assert sim.pending_live() == 5
    sim.run()
    # Canceled entries were discarded without running callbacks.
    assert sim.canceled_pending == 0
    assert sim.pending_live() == 0
    assert sim.events_processed == 5


@both_disciplines
def test_peek_skips_canceled_heads(fast):
    sim = Simulator(fast_path=fast)
    early = sim.timeout(1)
    sim.timeout(7)
    early.cancel()
    assert sim.peek() == 7
    assert sim.canceled_pending == 0  # peek discarded the dead head


@both_disciplines
def test_mass_cancel_triggers_compaction(fast):
    """Canceling more than half the calendar (past the floor) compacts it
    in place; the survivors still fire, in order."""
    sim = Simulator(fast_path=fast)
    n = _COMPACT_MIN * 4
    doomed = [sim.timeout(100 + i) for i in range(n)]
    keep = sim.timeout(500)
    fired = []
    keep.callbacks.append(lambda ev: fired.append(sim.now))
    for ev in doomed:
        ev.cancel()
    # Compaction ran (possibly several times as the threshold re-arms):
    # most of the graveyard is physically gone, not merely marked dead.
    assert sim.pending_live() == 1
    assert len(sim._heap) + len(sim._lane) < n // 2
    assert sim.canceled_pending < _COMPACT_MIN
    sim.run()
    assert fired == [500]


@both_disciplines
def test_cancel_zero_delay_event(fast):
    """A zero-delay (lane, on the fast path) entry can be canceled too."""
    sim = Simulator(fast_path=fast)

    def driver(sim):
        yield sim.timeout(1)
        z = sim.timeout(0)
        z.callbacks.append(lambda ev: fired.append("z"))
        z.cancel()
        yield sim.timeout(1)

    fired = []
    sim.process(driver(sim))
    sim.run()
    assert fired == []
    assert sim.canceled_pending == 0


@both_disciplines
def test_step_returns_false_for_canceled(fast):
    sim = Simulator(fast_path=fast)
    ev = sim.timeout(1)
    sim.timeout(2)
    ev.cancel()
    assert sim.step() is False  # dead entry consumed, clock unmoved
    assert sim.now == 0
    assert sim.step() is True
    assert sim.now == 2


def test_cancel_requires_triggered_state():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(SimulationError):
        ev.cancel()


# ------------------------------------------------------------ condition fixes


@both_disciplines
def test_all_of_with_already_processed_events(fast):
    """Building an AllOf over events that already ran must fire immediately
    instead of waiting forever (the pending count may never go negative)."""
    sim = Simulator(fast_path=fast)
    a, b = sim.timeout(1), sim.timeout(2)
    sim.run()
    done = []

    def waiter(sim):
        yield AllOf(sim, [a, b])
        done.append(sim.now)

    sim.process(waiter(sim))
    sim.run()
    assert done == [2]


@both_disciplines
def test_all_of_mixed_processed_and_pending(fast):
    sim = Simulator(fast_path=fast)
    a = sim.timeout(1)
    sim.run()
    b = sim.timeout(3)
    done = []

    def waiter(sim):
        yield AllOf(sim, [a, b])
        done.append(sim.now)

    sim.process(waiter(sim))
    sim.run()
    assert done == [4]  # b scheduled at now=1, fires at 1 + 3


@both_disciplines
def test_any_of_with_already_processed_event_fires_immediately(fast):
    sim = Simulator(fast_path=fast)
    a = sim.timeout(1)
    sim.run()
    b = sim.timeout(100)
    got = []

    def waiter(sim):
        res = yield AnyOf(sim, [a, b])
        got.append(res)

    sim.process(waiter(sim))
    sim.run(until=10)
    assert got and a in got[0]
    assert b not in got[0]


@both_disciplines
def test_any_of_detaches_check_from_losers(fast):
    """Once AnyOf decides, remaining sub-events must not retain the
    condition's _check callback — the O(n) rescan this PR removed also
    leaked callbacks onto every loser."""
    sim = Simulator(fast_path=fast)
    a, b, c = sim.timeout(1), sim.timeout(5), sim.timeout(9)
    cond = AnyOf(sim, [a, b, c])
    sim.run(until=2)
    assert cond.processed
    assert all(cb.__name__ != "_check" for cb in b.callbacks)
    assert all(cb.__name__ != "_check" for cb in c.callbacks)
    sim.run()  # losers fire without re-poking the decided condition


@both_disciplines
def test_all_of_failure_detaches_from_remaining(fast):
    sim = Simulator(fast_path=fast)
    a = Event(sim)
    b = sim.timeout(50)
    cond = AllOf(sim, [a, b])
    boom = RuntimeError("boom")
    a.fail(boom)
    sim.run(until=1)
    assert cond.processed and not cond.ok and cond._value is boom
    assert all(cb.__name__ != "_check" for cb in b.callbacks)
    sim.run()


@both_disciplines
def test_all_of_large_fanin_completes(fast):
    """await_acks-style fan-in: one AllOf over many events stays linear and
    correct (each sub-event is visited exactly once)."""
    sim = Simulator(fast_path=fast)
    events = [sim.timeout(i % 7) for i in range(200)]
    done = []

    def waiter(sim):
        yield AllOf(sim, events)
        done.append(sim.now)

    sim.process(waiter(sim))
    sim.run()
    assert done == [6]


# --------------------------------------------------------------- misc API


def test_fast_path_property_and_default():
    assert Simulator(fast_path=True).fast_path is True
    assert Simulator(fast_path=False).fast_path is False


@both_disciplines
def test_jitter_applies_only_to_positive_delays(fast):
    """Zero-delay scheduling must bypass the jitter hook entirely, or the
    lane invariant (entries due exactly at ``now``) would break."""
    sim = Simulator(fast_path=fast)
    seen = []

    def jit(d):
        seen.append(d)
        return d * 2

    sim.set_jitter(jit)
    fired = []

    def driver(sim):
        yield sim.timeout(4)  # jittered -> 8
        z = sim.timeout(0)    # NOT jittered
        z.callbacks.append(lambda ev: fired.append(sim.now))
        yield sim.timeout(0)

    sim.process(driver(sim))
    sim.run()
    assert seen == [4]
    assert fired == [8]
