"""Unit tests for ``Interrupt`` / ``Process.interrupt``.

The kernel has carried process interruption since the seed, but nothing
exercised it; the watchdog work leans on precise cancel/detach semantics,
so these tests pin the contract.
"""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


def test_interrupt_wakes_sleeper_with_cause():
    sim = Simulator()
    seen = []

    def sleeper(sim):
        try:
            yield sim.timeout(100)
        except Interrupt as exc:
            seen.append((sim.now, exc.cause))

    def poker(sim, victim):
        yield sim.timeout(3)
        victim.interrupt("wake up")

    victim = sim.process(sleeper(sim))
    sim.process(poker(sim, victim))
    sim.run()
    assert seen == [(3, "wake up")]


def test_interrupt_cause_defaults_to_none():
    exc = Interrupt()
    assert exc.cause is None


def test_interrupted_process_can_keep_running():
    """Catching the Interrupt leaves the process alive; it can wait again
    and the originally-awaited event must NOT resume it a second time."""
    sim = Simulator()
    trace = []

    def sleeper(sim):
        try:
            yield sim.timeout(10)
            trace.append("timeout")  # must not happen
        except Interrupt:
            trace.append(("interrupted", sim.now))
        yield sim.timeout(20)
        trace.append(("resumed", sim.now))

    def poker(sim, victim):
        yield sim.timeout(4)
        victim.interrupt()

    victim = sim.process(sleeper(sim))
    sim.process(poker(sim, victim))
    sim.run()
    # Interrupted at t=4, then slept 20 more: exactly one resumption each.
    assert trace == [("interrupted", 4), ("resumed", 24)]


def test_interrupt_finished_process_is_an_error():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)

    proc = sim.process(quick(sim))
    sim.run()
    assert not proc.is_alive
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_uncaught_interrupt_fails_the_process_event():
    """A watcher waiting on the process sees the Interrupt as the failure
    cause instead of the simulation dying silently."""
    sim = Simulator()
    seen = []

    def sleeper(sim):
        yield sim.timeout(100)  # never catches

    def watcher(sim, victim):
        try:
            yield victim
        except Interrupt as exc:
            seen.append(exc.cause)

    victim = sim.process(sleeper(sim))
    sim.process(watcher(sim, victim))

    def poker(sim):
        yield sim.timeout(2)
        victim.interrupt("boom")

    sim.process(poker(sim))
    sim.run()
    assert seen == ["boom"]


def test_interrupt_before_first_resume():
    """Interrupting a process that has not yet been bootstrapped delivers
    the Interrupt at its first resumption."""
    sim = Simulator()
    seen = []

    def sleeper(sim):
        try:
            yield sim.timeout(50)
        except Interrupt:
            seen.append(sim.now)

    proc = sim.process(sleeper(sim))
    proc.interrupt()
    sim.run()
    assert seen == [0]
