"""Property-based tests for :class:`repro.sim.RngStreams`.

The simulator's reproducibility rests entirely on this class: every
stochastic component (reference streams, fuzzer schedules, latency jitter)
draws from a named stream derived from one master seed.  These properties
pin down the contract the rest of the codebase assumes:

* the same (master_seed, name) pair always yields the same sequence,
  across independent ``RngStreams`` instances and across creation order;
* streams with different names are statistically independent (their
  prefixes differ) as long as the names' CRC32 labels differ;
* the CRC32 name-labelling scheme *does* collide — the classic
  "plumless"/"buckeroo" pair maps to the same stream.  That is a known,
  accepted limitation documented here so nobody relies on distinct names
  alone implying distinct streams.
"""

import zlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RngStreams

# Printable names without exotic unicode keep the CRC behaviour readable.
names = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), min_size=1, max_size=24
)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


@given(seed=seeds, name=names)
@settings(max_examples=50, deadline=None)
def test_same_seed_and_name_reproduce_exactly(seed, name):
    a = RngStreams(seed).stream(name).random(16)
    b = RngStreams(seed).stream(name).random(16)
    assert np.array_equal(a, b)


@given(seed=seeds, name_a=names, name_b=names, warmup=st.integers(0, 8))
@settings(max_examples=50, deadline=None)
def test_creation_order_does_not_perturb_streams(seed, name_a, name_b, warmup):
    """Adding a new consumer must not shift an existing stream's sequence."""
    if zlib.crc32(name_a.encode()) == zlib.crc32(name_b.encode()):
        return  # same label = same cached stream; the neighbour IS us
    alone = RngStreams(seed)
    alone.stream(name_a).random(warmup)
    expected = alone.stream(name_a).random(8)

    crowded = RngStreams(seed)
    crowded.stream(name_b).random(32)  # a neighbour draws first...
    crowded.stream(name_a).random(warmup)
    got = crowded.stream(name_a).random(8)  # ...without affecting us
    assert np.array_equal(expected, got)


@given(seed=seeds, name_a=names, name_b=names)
@settings(max_examples=50, deadline=None)
def test_distinct_labels_give_independent_prefixes(seed, name_a, name_b):
    if zlib.crc32(name_a.encode()) == zlib.crc32(name_b.encode()):
        return  # collision: identical streams by design (see collision test)
    s = RngStreams(seed)
    a = s.stream(name_a).random(16)
    b = s.stream(name_b).random(16)
    # 16 doubles from independent PCG64 streams collide with probability ~0.
    assert not np.array_equal(a, b)


def test_crc_name_collision_aliases_streams():
    """"plumless" and "buckeroo" share a CRC32 — and therefore a stream."""
    assert zlib.crc32(b"plumless") == zlib.crc32(b"buckeroo")
    s = RngStreams(123)
    a = RngStreams(123).stream("plumless").random(16)
    b = s.stream("buckeroo").random(16)
    assert np.array_equal(a, b)  # documented limitation, not a target


@given(seed=seeds, salt=names, name=names)
@settings(max_examples=50, deadline=None)
def test_fork_is_deterministic_and_divergent(seed, salt, name):
    f1 = RngStreams(seed).fork(salt)
    f2 = RngStreams(seed).fork(salt)
    assert f1.master_seed == f2.master_seed
    a = f1.stream(name).random(8)
    b = f2.stream(name).random(8)
    assert np.array_equal(a, b)
    # The fork derives a different master seed unless the mix collides.
    if f1.master_seed != seed:
        parent = RngStreams(seed).stream(name).random(8)
        assert not np.array_equal(a, parent)
