"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_empty_run_leaves_time_at_zero():
    sim = Simulator()
    sim.run()
    assert sim.now == 0


def test_run_until_does_not_fabricate_time():
    """The clock tracks processed events only; an empty run stays at 0 so
    completion times remain meaningful."""
    sim = Simulator()
    sim.run(until=100)
    assert sim.now == 0


def test_timeout_fires_at_delay():
    sim = Simulator()
    seen = []

    def p(sim):
        yield sim.timeout(7)
        seen.append(sim.now)

    sim.process(p(sim))
    sim.run()
    assert seen == [7]


def test_timeout_zero_fires_same_time():
    sim = Simulator()
    seen = []

    def p(sim):
        yield sim.timeout(0)
        seen.append(sim.now)

    sim.process(p(sim))
    sim.run()
    assert seen == [0]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def p(sim):
        v = yield sim.timeout(3, value="payload")
        got.append(v)

    sim.process(p(sim))
    sim.run()
    assert got == ["payload"]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def p(sim, delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(p(sim, 30, "c"))
    sim.process(p(sim, 10, "a"))
    sim.process(p(sim, 20, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_by_schedule_order():
    sim = Simulator()
    order = []

    def p(sim, tag):
        yield sim.timeout(5)
        order.append(tag)

    for tag in ("first", "second", "third"):
        sim.process(p(sim, tag))
    sim.run()
    assert order == ["first", "second", "third"]


def test_process_waits_on_manual_event():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter(sim):
        v = yield ev
        got.append((sim.now, v))

    def firer(sim):
        yield sim.timeout(12)
        ev.succeed("go")

    sim.process(waiter(sim))
    sim.process(firer(sim))
    sim.run()
    assert got == [(12, "go")]


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_process_return_value_propagates():
    sim = Simulator()
    results = []

    def child(sim):
        yield sim.timeout(4)
        return 42

    def parent(sim):
        v = yield sim.process(child(sim))
        results.append((sim.now, v))

    sim.process(parent(sim))
    sim.run()
    assert results == [(4, 42)]


def test_waiting_on_already_processed_event_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")
    got = []

    def p(sim):
        yield sim.timeout(10)
        v = yield ev  # fired long ago
        got.append((sim.now, v))

    sim.process(p(sim))
    sim.run()
    assert got == [(10, "early")]


def test_failed_event_raises_inside_process():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def p(sim):
        try:
            yield ev
        except RuntimeError as e:
            caught.append(str(e))

    sim.process(p(sim))
    ev.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unwatched_process_exception_propagates_to_run():
    sim = Simulator()

    def p(sim):
        yield sim.timeout(1)
        raise ValueError("bug in process")

    sim.process(p(sim))
    with pytest.raises(ValueError, match="bug in process"):
        sim.run()


def test_watched_process_exception_fails_the_process_event():
    sim = Simulator()
    caught = []

    def child(sim):
        yield sim.timeout(1)
        raise ValueError("child failed")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except ValueError as e:
            caught.append(str(e))

    sim.process(parent(sim))
    sim.run()
    assert caught == ["child failed"]


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_yield_non_event_raises_simulation_error():
    sim = Simulator()

    def p(sim):
        yield 5

    sim.process(p(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_interrupt_wakes_process_with_cause():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100)
            log.append("slept")
        except Interrupt as i:
            log.append(("interrupted", sim.now, i.cause))

    def interrupter(sim, victim):
        yield sim.timeout(5)
        victim.interrupt("wake up")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [("interrupted", 5, "wake up")]


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def p(sim):
        yield sim.timeout(1)

    proc = sim.process(p(sim))
    sim.run()
    assert not proc.is_alive
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_all_of_waits_for_every_event():
    sim = Simulator()
    got = []

    def p(sim):
        values = yield AllOf(sim, [sim.timeout(3, "a"), sim.timeout(9, "b"), sim.timeout(6, "c")])
        got.append((sim.now, values))

    sim.process(p(sim))
    sim.run()
    assert got == [(9, ["a", "b", "c"])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    got = []

    def p(sim):
        v = yield AllOf(sim, [])
        got.append((sim.now, v))

    sim.process(p(sim))
    sim.run()
    assert got == [(0, [])]


def test_any_of_fires_on_first():
    sim = Simulator()
    got = []

    def p(sim):
        ev, v = yield AnyOf(sim, [sim.timeout(30, "slow"), sim.timeout(2, "fast")])
        got.append((sim.now, v))

    sim.process(p(sim))
    sim.run()
    assert got == [(2, "fast")]


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.timeout(17)
    assert sim.peek() == 17
    sim.run()
    assert sim.peek() == float("inf")


def test_run_until_is_inclusive():
    sim = Simulator()
    seen = []

    def p(sim):
        yield sim.timeout(10)
        seen.append(sim.now)

    sim.process(p(sim))
    sim.run(until=10)
    assert seen == [10]


def test_run_until_excludes_later_events():
    sim = Simulator()
    seen = []

    def p(sim):
        yield sim.timeout(11)
        seen.append(sim.now)

    sim.process(p(sim))
    sim.run(until=10)
    assert seen == []
    assert sim.now == 0  # no event at or before 10 was processed
    sim.run()
    assert seen == [11]


def test_max_events_bounds_work():
    sim = Simulator()
    for _ in range(10):
        sim.timeout(1)
    sim.run(max_events=3)
    assert sim.pending_live() == 7


def test_nested_process_chain_time_accumulates():
    sim = Simulator()
    trace = []

    def level3(sim):
        yield sim.timeout(1)
        return "deep"

    def level2(sim):
        v = yield sim.process(level3(sim))
        yield sim.timeout(2)
        return v + "-2"

    def level1(sim):
        v = yield sim.process(level2(sim))
        trace.append((sim.now, v))

    sim.process(level1(sim))
    sim.run()
    assert trace == [(3, "deep-2")]


def test_active_process_visible_during_execution():
    sim = Simulator()
    seen = []

    def p(sim):
        seen.append(sim.active_process)
        yield sim.timeout(1)

    proc = sim.process(p(sim))
    sim.run()
    assert seen == [proc]
    assert sim.active_process is None


def test_many_processes_complete():
    sim = Simulator()
    done = []

    def p(sim, i):
        yield sim.timeout(i % 7)
        done.append(i)

    for i in range(500):
        sim.process(p(sim, i))
    sim.run()
    assert len(done) == 500
