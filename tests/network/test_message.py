"""Unit tests for message sizing and identity."""

from repro.network import Message, MessageType, SizeClass, flit_size


def test_every_message_type_has_a_size_class():
    for mt in MessageType:
        msg = Message(src=0, dst=1, mtype=mt)
        assert isinstance(msg.size_class, SizeClass)


def test_flit_sizes():
    B = 4
    assert flit_size(SizeClass.CONTROL, B) == 1
    assert flit_size(SizeClass.INVALIDATION, B) == 1
    assert flit_size(SizeClass.WORD, B) == 2
    assert flit_size(SizeClass.BLOCK, B) == 5


def test_block_messages_scale_with_block_size():
    msg = Message(0, 1, MessageType.DATA_BLOCK)
    assert msg.flits(4) == 5
    assert msg.flits(8) == 9


def test_control_messages_are_single_flit():
    assert Message(0, 1, MessageType.READ_MISS).flits(16) == 1
    assert Message(0, 1, MessageType.INV).flits(16) == 1


def test_message_ids_unique_and_increasing():
    a = Message(0, 1, MessageType.READ_MISS)
    b = Message(0, 1, MessageType.READ_MISS)
    assert b.msg_id > a.msg_id


def test_info_dict_is_per_message():
    a = Message(0, 1, MessageType.READ_MISS)
    b = Message(0, 1, MessageType.READ_MISS)
    a.info["x"] = 1
    assert "x" not in b.info
