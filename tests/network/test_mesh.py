"""Unit tests for the 2D mesh interconnect."""

import pytest

from repro.network import (
    Message,
    MessageType,
    MeshNetwork,
    NetworkParams,
    mesh_dims,
    xy_route,
)
from repro.sim import Simulator


def test_mesh_dims_near_square():
    assert mesh_dims(4) == (2, 2)
    assert mesh_dims(8) == (2, 4)
    assert mesh_dims(16) == (4, 4)
    assert mesh_dims(64) == (8, 8)


def test_mesh_dims_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        mesh_dims(6)
    with pytest.raises(ValueError):
        mesh_dims(0)


def test_xy_route_straight_line():
    # 4x4 mesh: 0 -> 3 is three X hops.
    assert xy_route(0, 3, 4, 4) == [(0, 1), (1, 2), (2, 3)]


def test_xy_route_turns_once():
    # 0 -> 15 in a 4x4 mesh: X to column 3, then Y down.
    links = xy_route(0, 15, 4, 4)
    assert links[:3] == [(0, 1), (1, 2), (2, 3)]
    assert links[3:] == [(3, 7), (7, 11), (11, 15)]


def test_xy_route_self_is_empty():
    assert xy_route(5, 5, 4, 4) == []


def test_xy_route_range_checked():
    with pytest.raises(ValueError):
        xy_route(0, 16, 4, 4)


def make_mesh(n=16, **kw):
    sim = Simulator()
    net = MeshNetwork(sim, n, NetworkParams(**kw))
    inbox = {i: [] for i in range(n)}
    for i in range(n):
        net.attach(i, lambda m, i=i: inbox[i].append((sim.now, m)))
    return sim, net, inbox


def test_mesh_delivery_and_latency_scales_with_distance():
    sim, net, inbox = make_mesh()
    net.send(Message(0, 1, MessageType.READ_MISS))  # 1 hop
    net.send(Message(12, 15, MessageType.READ_MISS))  # 3 hops, disjoint path
    sim.run()
    assert inbox[1][0][0] == 1
    assert inbox[15][0][0] == 3
    assert net.uncontended_latency(0, 15, 1) == 6
    assert net.hop_count(0, 15) == 6


def test_mesh_link_contention_serializes():
    sim, net, inbox = make_mesh(n=4)
    # Both messages use link (0,1) first.
    net.send(Message(0, 1, MessageType.DATA_BLOCK))
    net.send(Message(0, 1, MessageType.DATA_BLOCK))
    sim.run()
    times = sorted(t for t, _ in inbox[1])
    assert times[1] == times[0] + 5  # second waits a full service time


def test_mesh_disjoint_paths_parallel():
    sim, net, inbox = make_mesh(n=16)
    net.send(Message(0, 1, MessageType.READ_MISS))
    net.send(Message(14, 15, MessageType.READ_MISS))
    sim.run()
    assert inbox[1][0][0] == 1
    assert inbox[15][0][0] == 1


def test_mesh_works_in_machine():
    from repro import CBLLock, Machine, MachineConfig

    cfg = MachineConfig(n_nodes=8, cache_blocks=64, cache_assoc=2, network="mesh")
    m = Machine(cfg, protocol="primitives")
    lock = CBLLock(m)

    def w(p):
        yield from p.acquire(lock)
        v = yield from lock.read_data(p, 0)
        yield from lock.write_data(p, 0, v + 1)
        yield from p.release(lock)

    for i in range(8):
        m.spawn(w(m.processor(i)))
    m.run()
    assert m.peek_memory(m.amap.word_addr(lock.block, 0)) == 8
