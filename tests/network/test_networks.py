"""Unit tests for the Omega, bus, and crossbar interconnects."""

import pytest

from repro.network import (
    BufferedOmegaNetwork,
    BusNetwork,
    CrossbarNetwork,
    Message,
    MessageType,
    NetworkParams,
    OmegaNetwork,
)
from repro.sim import Simulator


def make_net(cls, n=8, **kw):
    sim = Simulator()
    net = cls(sim, n, NetworkParams(**kw))
    inbox = {i: [] for i in range(n)}
    for i in range(n):
        net.attach(i, lambda m, i=i: inbox[i].append((net.sim.now, m)))
    return sim, net, inbox


# ------------------------------------------------------------------ generic


@pytest.mark.parametrize("cls", [OmegaNetwork, BufferedOmegaNetwork, BusNetwork, CrossbarNetwork])
def test_message_delivered_to_destination(cls):
    sim, net, inbox = make_net(cls)
    net.send(Message(0, 5, MessageType.READ_MISS))
    sim.run()
    assert len(inbox[5]) == 1
    assert all(not inbox[i] for i in range(8) if i != 5)


@pytest.mark.parametrize("cls", [OmegaNetwork, BufferedOmegaNetwork, BusNetwork, CrossbarNetwork])
def test_local_message_bypasses_network(cls):
    sim, net, inbox = make_net(cls, local_delivery=2)
    net.send(Message(3, 3, MessageType.READ_MISS))
    sim.run()
    t, _ = inbox[3][0]
    assert t == 2
    assert net.stats.counters["local_messages"] == 1


@pytest.mark.parametrize("cls", [OmegaNetwork, BusNetwork, CrossbarNetwork])
def test_stats_count_messages_and_flits(cls):
    sim, net, inbox = make_net(cls)
    net.send(Message(0, 1, MessageType.READ_MISS))  # 1 flit
    net.send(Message(0, 2, MessageType.DATA_BLOCK))  # 1+4 flits
    sim.run()
    assert net.message_count == 2
    assert net.stats.counters["flits"] == 6
    assert net.count_of(MessageType.READ_MISS) == 1


def test_attach_twice_rejected():
    sim = Simulator()
    net = OmegaNetwork(sim, 4)
    net.attach(0, lambda m: None)
    with pytest.raises(ValueError):
        net.attach(0, lambda m: None)


def test_send_out_of_range_rejected():
    sim = Simulator()
    net = OmegaNetwork(sim, 4)
    with pytest.raises(ValueError):
        net.send(Message(0, 9, MessageType.READ_MISS))


def test_unattached_destination_raises_at_delivery():
    sim = Simulator()
    net = OmegaNetwork(sim, 4)
    net.send(Message(0, 1, MessageType.READ_MISS))
    with pytest.raises(RuntimeError):
        sim.run()


# ------------------------------------------------------------------ omega


def test_omega_uncontended_latency_is_stages_times_service():
    sim, net, inbox = make_net(OmegaNetwork, n=16, switch_cycle=2)
    net.send(Message(0, 9, MessageType.READ_MISS))  # 1 flit, 4 stages
    sim.run()
    t, _ = inbox[9][0]
    assert t == 4 * 2 * 1
    assert net.uncontended_latency(1) == 8


def test_omega_block_message_slower_than_control():
    sim, net, inbox = make_net(OmegaNetwork, n=8)
    net.send(Message(0, 5, MessageType.READ_MISS))
    net.send(Message(1, 6, MessageType.DATA_BLOCK))
    sim.run()
    t_ctrl = inbox[5][0][0]
    t_block = inbox[6][0][0]
    assert t_block == t_ctrl * 5  # 5 flits vs 1 flit


def test_omega_contention_serializes_same_wire():
    """Two messages to the same destination must serialize at the last stage
    at least; delivery times differ."""
    sim, net, inbox = make_net(OmegaNetwork, n=8)
    net.send(Message(0, 5, MessageType.READ_MISS))
    net.send(Message(1, 5, MessageType.READ_MISS))
    sim.run()
    times = sorted(t for t, _ in inbox[5])
    assert times[1] > times[0]


def test_omega_disjoint_paths_no_interference():
    """A permutation that the Omega network can route without conflict
    delivers everything at the uncontended latency (identity permutation)."""
    n = 8
    sim, net, inbox = make_net(OmegaNetwork, n=n)
    for i in range(n):
        net.send(Message(i, i, MessageType.READ_MISS))  # local: trivially disjoint
    sim.run()
    for i in range(n):
        assert inbox[i][0][0] == net.params.local_delivery


def test_omega_hotspot_latency_grows_with_offered_load():
    def hotspot_latency(n_senders):
        sim, net, inbox = make_net(OmegaNetwork, n=16)
        for s in range(n_senders):
            net.send(Message(s, 0, MessageType.READ_MISS))
        sim.run()
        return max(t for t, _ in inbox[0])

    assert hotspot_latency(8) > hotspot_latency(2)


def test_omega_queueing_stat_nonzero_under_contention():
    sim, net, inbox = make_net(OmegaNetwork, n=8)
    for s in range(4):
        net.send(Message(s, 7, MessageType.DATA_BLOCK))
    sim.run()
    assert net.stats.tally("queueing").max > 0


def test_omega_wire_utilization_bounded():
    sim, net, inbox = make_net(OmegaNetwork, n=8)
    for s in range(8):
        for d in range(8):
            if s != d:
                net.send(Message(s, d, MessageType.READ_MISS))
    sim.run()
    u = net.wire_utilization()
    assert 0 < u <= 1.0


def test_omega_rejects_non_power_of_two():
    sim = Simulator()
    with pytest.raises(ValueError):
        OmegaNetwork(sim, 6)


# ------------------------------------------------------------------ buffered omega


def test_buffered_omega_matches_unbuffered_when_uncontended():
    sim1, net1, inbox1 = make_net(OmegaNetwork, n=8, switch_cycle=3)
    sim2, net2, inbox2 = make_net(BufferedOmegaNetwork, n=8, switch_cycle=3)
    net1.send(Message(2, 6, MessageType.DATA_BLOCK))
    net2.send(Message(2, 6, MessageType.DATA_BLOCK))
    sim1.run()
    sim2.run()
    assert inbox1[6][0][0] == inbox2[6][0][0]


def test_buffered_omega_delivers_under_heavy_load():
    sim, net, inbox = make_net(BufferedOmegaNetwork, n=8, buffer_capacity=1)
    for s in range(8):
        for d in range(8):
            if s != d:
                net.send(Message(s, d, MessageType.READ_MISS))
    sim.run()
    total = sum(len(v) for v in inbox.values())
    assert total == 8 * 7


def test_buffered_omega_finite_buffers_slower_than_infinite():
    """With tiny buffers and a hotspot, backpressure must not lose or
    duplicate messages, and the finite network is no faster."""

    def run(cls, cap):
        sim, net, inbox = make_net(cls, n=16, buffer_capacity=cap)
        for s in range(1, 16):
            net.send(Message(s, 0, MessageType.DATA_BLOCK))
        sim.run()
        return max(t for t, _ in inbox[0]), sum(len(v) for v in inbox.values())

    t_inf, n_inf = run(OmegaNetwork, None)
    t_fin, n_fin = run(BufferedOmegaNetwork, 1)
    assert n_inf == n_fin == 15
    assert t_fin >= t_inf


# ------------------------------------------------------------------ bus


def test_bus_serializes_everything():
    sim, net, inbox = make_net(BusNetwork, n=4)
    net.send(Message(0, 1, MessageType.READ_MISS))
    net.send(Message(2, 3, MessageType.READ_MISS))
    sim.run()
    assert inbox[1][0][0] == 1
    assert inbox[3][0][0] == 2  # waits for the first transfer


def test_bus_utilization():
    sim, net, inbox = make_net(BusNetwork, n=4)
    net.send(Message(0, 1, MessageType.DATA_BLOCK))
    sim.run()
    assert net.utilization() == pytest.approx(1.0)


# ------------------------------------------------------------------ crossbar


def test_crossbar_different_destinations_parallel():
    sim, net, inbox = make_net(CrossbarNetwork, n=4)
    net.send(Message(0, 1, MessageType.READ_MISS))
    net.send(Message(2, 3, MessageType.READ_MISS))
    sim.run()
    assert inbox[1][0][0] == 1
    assert inbox[3][0][0] == 1  # no interference


def test_crossbar_same_destination_serializes():
    sim, net, inbox = make_net(CrossbarNetwork, n=4)
    net.send(Message(0, 3, MessageType.READ_MISS))
    net.send(Message(1, 3, MessageType.READ_MISS))
    sim.run()
    times = sorted(t for t, _ in inbox[3])
    assert times == [1, 2]


def test_crossbar_faster_than_bus_under_spread_load():
    def total_time(cls):
        sim, net, inbox = make_net(cls, n=8)
        for i in range(0, 8, 2):
            net.send(Message(i, i + 1, MessageType.DATA_BLOCK))
        sim.run()
        return max(max(t for t, _ in v) for v in inbox.values() if v)

    assert total_time(CrossbarNetwork) < total_time(BusNetwork)
