"""Unit tests for Omega destination-tag routing."""

import pytest

from repro.network import (
    is_power_of_two,
    num_stages,
    omega_path_switches,
    omega_route,
)


def test_is_power_of_two():
    assert is_power_of_two(1)
    assert is_power_of_two(64)
    assert not is_power_of_two(0)
    assert not is_power_of_two(12)
    assert not is_power_of_two(-4)


def test_num_stages():
    assert num_stages(2) == 1
    assert num_stages(8) == 3
    assert num_stages(64) == 6


def test_num_stages_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        num_stages(6)


@pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64])
def test_route_ends_at_destination(n):
    for src in range(n):
        for dst in range(n):
            wires = omega_route(src, dst, n)
            assert len(wires) == num_stages(n)
            assert wires[-1] == dst


def test_route_known_example_8_nodes():
    # src=0 -> dst=5 (101b) in an 8-node network:
    # v0=0; v1 = (0<<1)|1 = 1; v2 = (1<<1)|0 = 2; v3 = (2<<1)|1 = 5
    assert omega_route(0, 5, 8) == [1, 2, 5]


def test_route_same_destination_converges():
    """All paths to the same destination share the final wire."""
    n = 16
    finals = {omega_route(src, 9, n)[-1] for src in range(n)}
    assert finals == {9}


def test_distinct_sources_distinct_first_wires_when_spread():
    """The shuffle keeps sources that differ in their low-order bits on
    distinct stage-0 wires (the MSB is dropped by the shift)."""
    n = 8
    w0 = omega_route(0, 0, n)[0]
    w1 = omega_route(1, 0, n)[0]
    assert w0 != w1
    # Sources differing only in the MSB collide at stage 0 — that is the
    # Omega network's blocking nature, not a bug.
    assert omega_route(0, 0, n)[0] == omega_route(4, 0, n)[0]


def test_path_switches_is_wire_halved():
    n = 8
    assert omega_path_switches(3, 6, n) == [w >> 1 for w in omega_route(3, 6, n)]


def test_route_out_of_range_rejected():
    with pytest.raises(ValueError):
        omega_route(8, 0, 8)
    with pytest.raises(ValueError):
        omega_route(0, -1, 8)


def test_hotspot_paths_share_final_stage_only_partially():
    """Paths from all sources to one destination form a tree: the number of
    distinct wires per stage halves toward the root."""
    n = 16
    k = num_stages(n)
    routes = [omega_route(s, 0, n) for s in range(n)]
    for stage in range(k):
        distinct = {r[stage] for r in routes}
        assert len(distinct) == n >> (stage + 1) or len(distinct) == max(1, n >> (stage + 1))
