"""Regression: which topologies honor ``NetworkParams.buffer_capacity``.

Only the buffered Omega variant models finite per-port buffers with
backpressure; every other topology assumes infinite buffering (the paper's
own assumption) and silently ignores the parameter.  The
``HONORS_BUFFER_CAPACITY`` class flag advertises the behavior; these tests
pin the flag *and* the behavior per topology, so a future backpressure
implementation must flip the flag (and these expectations) deliberately.
"""

import pytest

from repro.network import (
    BufferedOmegaNetwork,
    BusNetwork,
    CrossbarNetwork,
    Message,
    MessageType,
    NetworkParams,
    OmegaNetwork,
)
from repro.network.mesh import MeshNetwork
from repro.sim import Simulator

EXPECTED_FLAG = {
    OmegaNetwork: False,
    BufferedOmegaNetwork: True,
    BusNetwork: False,
    CrossbarNetwork: False,
    MeshNetwork: False,
}


@pytest.mark.parametrize("cls,honors", sorted(EXPECTED_FLAG.items(), key=lambda kv: kv[0].__name__))
def test_honors_buffer_capacity_flag(cls, honors):
    assert cls.HONORS_BUFFER_CAPACITY is honors


def _victim_delivery_times(cls, capacity):
    """Hot-spot at node 0 plus one 'victim' control message per source to a
    non-hot destination; returns the victims' sorted delivery times.

    Finite buffers show up as *tree saturation*: the hot-spot backlog fills
    upstream ports and delays traffic that merely shares them.  With
    infinite buffers the victims sail past the backlog.
    """
    sim = Simulator()
    net = cls(sim, 8, NetworkParams(buffer_capacity=capacity))
    victim_times = []

    def handler(msg):
        if msg.info.get("victim"):
            victim_times.append(sim.now)

    for i in range(8):
        net.attach(i, lambda m: handler(m))
    for src in range(1, 8):
        for _ in range(8):
            net.send(Message(src, 0, MessageType.DATA_BLOCK))
    for src in range(1, 8):
        dst = (src % 7) + 1
        net.send(Message(src, dst if dst != src else 7, MessageType.READ_MISS, info={"victim": True}))
    sim.run()
    assert len(victim_times) == 7
    return sorted(victim_times)


@pytest.mark.parametrize(
    "cls", [OmegaNetwork, BusNetwork, CrossbarNetwork, MeshNetwork], ids=lambda c: c.__name__
)
def test_unbuffered_topologies_ignore_capacity(cls):
    """Infinite-buffer models deliver identically whether or not a (tiny)
    capacity is configured — the setting is documented as ignored."""
    assert _victim_delivery_times(cls, capacity=1) == _victim_delivery_times(cls, capacity=None)


def test_buffered_omega_backpressures_on_capacity():
    """The buffered Omega's finite ports must actually saturate: the last
    victim arrives strictly later under capacity 1 than with infinite
    buffers (tree saturation, the point of the buffered ablation)."""
    tight = _victim_delivery_times(BufferedOmegaNetwork, capacity=1)
    loose = _victim_delivery_times(BufferedOmegaNetwork, capacity=None)
    assert tight[-1] > loose[-1]
