"""Ablation — resource-limit knobs the paper's design discussion raises.

* **Directory structure** (Section 4.1 picks pointer-based over full-map /
  limited directories): a limited directory forces sharer evictions whose
  invalidation traffic grows as the pointer budget shrinks.
* **Write-buffer capacity** (the paper assumes infinite): finite buffers
  re-introduce processor stalls under BC.
* **Hot-spot saturation**: the simulated Omega network's throughput under
  a hot spot tracks the Pfister–Norton bound the paper cites [18].
"""

import pytest

from conftest import fmt, print_table
from repro import Machine, MachineConfig
from repro.analysis import hotspot_saturation
from repro.network import Message, MessageType, NetworkParams, OmegaNetwork
from repro.sim import Simulator


def test_directory_limit(benchmark):
    def run(limit):
        cfg = MachineConfig(
            n_nodes=16, cache_blocks=256, cache_assoc=2, directory_limit=limit
        )
        m = Machine(cfg, protocol="wbi")
        addr = m.alloc_word()

        def reader(p):
            for _ in range(4):
                yield from p.read(addr)
                yield from p.compute(50)

        for i in range(16):
            m.spawn(reader(m.processor(i)))
        m.run()
        return m.sim.now, m.net.count_of(MessageType.INV)

    res = benchmark.pedantic(
        lambda: {str(l): run(l) for l in (None, 8, 4, 1)}, rounds=1, iterations=1
    )
    print_table(
        "Limited directory (16 readers of one block)",
        ["pointer limit", "completion", "INV messages"],
        [[k, fmt(v[0], 0), v[1]] for k, v in res.items()],
    )
    assert res["None"][1] == 0
    assert res["1"][1] > res["4"][1] > res["8"][1]
    benchmark.extra_info["results"] = {k: {"time": v[0], "invs": v[1]} for k, v in res.items()}


def test_write_buffer_capacity(benchmark):
    def run(capacity):
        cfg = MachineConfig(
            n_nodes=4, cache_blocks=64, cache_assoc=2, write_buffer_capacity=capacity
        )
        m = Machine(cfg, protocol="primitives")
        p = m.processor(0, consistency="bc")
        addrs = [m.alloc_word() for _ in range(20)]
        out = {}

        def w():
            t0 = p.sim.now
            for a in addrs:
                yield from p.shared_write(a, 1)
            out["issue"] = p.sim.now - t0
            yield from p.flush()

        m.spawn(w())
        m.run()
        return out["issue"]

    res = benchmark.pedantic(
        lambda: {str(c): run(c) for c in (None, 8, 2, 1)}, rounds=1, iterations=1
    )
    print_table(
        "Write-buffer capacity (20 buffered global writes)",
        ["capacity", "issue stall (cycles)"],
        [[k, fmt(v, 0)] for k, v in res.items()],
    )
    # Infinite buffer: issue time ~ 1 cycle per write.  Tiny buffers stall.
    assert res["None"] < res["2"] <= res["1"]
    benchmark.extra_info["results"] = res


def test_hotspot_saturation_tracks_pfister_norton(benchmark):
    """Drain-time degradation under a hot spot vs the 1/(1+h(N-1)) bound.

    With a fraction ``h`` of traffic aimed at node 0, the hot module's
    final-stage wire carries ``h + (1-h)/N`` of all messages, so the burst
    drains ``1/(N(h + (1-h)/N)) = 1/(1 + h(N-1))``-times as fast as a
    uniform burst — exactly the Pfister–Norton saturation factor.
    """
    import numpy as np

    def drain_time(hot, n=16, msgs_per_node=400, seed=12345):
        sim = Simulator()
        net = OmegaNetwork(sim, n, NetworkParams())
        last = [0.0]
        for i in range(n):
            net.attach(i, lambda m: last.__setitem__(0, sim.now))
        rng = np.random.default_rng(seed)
        for src in range(n):
            for _k in range(msgs_per_node):
                dst = 0 if rng.random() < hot else int(rng.integers(0, n))
                net.send(Message(src, dst, MessageType.READ_MISS))
        sim.run()
        return last[0]

    def measure():
        base = drain_time(0.0)
        return {h: base / drain_time(h) for h in (0.1, 0.2, 0.5)}

    rel = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [h, fmt(rel[h], 3), fmt(hotspot_saturation(16, h), 3)] for h in rel
    ]
    print_table(
        "Hot-spot drain-rate degradation (n=16)",
        ["h", "measured relative rate", "Pfister-Norton bound"],
        rows,
    )
    for h, r in rel.items():
        bound = hotspot_saturation(16, h)
        assert r < 1.0
        # Same order as the steady-state bound (the finite uniform burst
        # itself suffers some contention, lifting the measured ratio).
        assert bound < r < 2.0 * bound, h
    # Monotone: hotter spot, worse degradation.
    assert rel[0.5] < rel[0.2] < rel[0.1]
    benchmark.extra_info["measured"] = rel


def test_stencil_mesh_vs_omega(benchmark):
    from repro.workloads import run_stencil

    res = benchmark.pedantic(
        lambda: {
            net: run_stencil(16, network=net, points_per_node=8, sweeps=3).completion_time
            for net in ("omega", "mesh")
        },
        rounds=1,
        iterations=1,
    )
    print_table(
        "Stencil (neighbour-local) on omega vs mesh, n=16",
        ["network", "completion"],
        [[k, fmt(v, 0)] for k, v in res.items()],
    )
    # Neighbour-local traffic: the mesh is competitive (within 2x).
    assert res["mesh"] < 2 * res["omega"]
    benchmark.extra_info["results"] = res


def test_topology_vs_traffic_pattern(benchmark):
    """The full picture: the mesh is competitive on neighbour-local work
    (stencil) but the multistage network's uniform log-N distance pays on
    all-to-all work (the solver) at scale — why the paper targets
    multistage interconnects for general shared memory."""
    from repro.workloads import run_linsolver, run_stencil

    def run_all():
        out = {}
        for net in ("omega", "mesh"):
            out[("stencil", net)] = run_stencil(
                16, network=net, points_per_node=8, sweeps=3
            ).completion_time
            out[("solver", net)] = run_linsolver(
                16, "read-update", iterations=3, network=net,
                cache_blocks=256, cache_assoc=2,
            ).completion_time
        return out

    res = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [wl, fmt(res[(wl, "omega")], 0), fmt(res[(wl, "mesh")], 0),
         fmt(res[(wl, "mesh")] / res[(wl, "omega")], 2)]
        for wl in ("stencil", "solver")
    ]
    print_table(
        "Topology vs traffic pattern, n=16",
        ["workload", "omega", "mesh", "mesh/omega"],
        rows,
    )
    stencil_ratio = res[("stencil", "mesh")] / res[("stencil", "omega")]
    solver_ratio = res[("solver", "mesh")] / res[("solver", "omega")]
    # The mesh's relative standing is better on local traffic than on
    # all-to-all traffic.
    assert stencil_ratio < solver_ratio
    benchmark.extra_info["ratios"] = {"stencil": stencil_ratio, "solver": solver_ratio}
