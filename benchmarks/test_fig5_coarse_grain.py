"""Figure 5 — completion time vs processors, coarse-granularity parallelism.

Increasing task granularity dilutes synchronization: Q-WBI's scalability
improves relative to Figure 4 but still degrades past ~32 nodes, while
Q-CBL keeps scaling.
"""

from conftest import fmt, print_table
from figures_common import FIG45_SERIES, sweep

NS = (2, 4, 8, 16, 32)
GRAIN = "coarse"


def test_fig5(benchmark):
    data = benchmark.pedantic(
        lambda: sweep(NS, FIG45_SERIES, GRAIN), rounds=1, iterations=1
    )
    rows = [[label] + [fmt(data[label][n], 0) for n in NS] for label, _m, _s in FIG45_SERIES]
    print_table(
        f"Figure 5: completion time (cycles), {GRAIN} grain",
        ["series"] + [f"n={n}" for n in NS],
        rows,
    )
    big = NS[-1]
    # Coarse grain: WBI's penalty shrinks but remains at scale.
    assert data["Q-WBI"][big] > 1.2 * data["Q-CBL"][big]
    assert data["Q-backoff"][big] <= data["Q-WBI"][big]
    # Sync-model curves stay comparable.
    assert data["WBI"][big] < 2 * data["CBL"][big] + 1
    benchmark.extra_info["series"] = {k: v for k, v in data.items()}


def test_fig5_vs_fig4_granularity_effect(benchmark):
    """Coarser tasks reduce the Q-WBI : Q-CBL gap (the paper's point in
    moving from Figure 4 to Figure 5)."""

    def ratios():
        out = {}
        for grain in ("medium", "coarse"):
            d = sweep((16,), (("Q-WBI", "queue", "tts"), ("Q-CBL", "queue", "cbl")), grain)
            out[grain] = d["Q-WBI"][16] / d["Q-CBL"][16]
        return out

    r = benchmark.pedantic(ratios, rounds=1, iterations=1)
    print_table(
        "Q-WBI/Q-CBL completion ratio at n=16",
        ["grain", "ratio"],
        [[g, fmt(r[g], 2)] for g in r],
    )
    assert r["coarse"] < r["medium"]
