"""Ablation — reader-initiated (READ-UPDATE) vs sender-initiated
(write-update) coherence.

Section 4.1: "if an update approach is used, the updates may be sent to
readers who may no longer be interested in these values."  A phased
workload makes that concrete: in each phase every processor consumes a
*different* producer's region.  Under write-update, having read a region
once subscribes you forever; under read-update the reader re-targets its
subscription each phase (RESET-UPDATE + READ-UPDATE).
"""

import pytest

from conftest import fmt, print_table
from repro import HWBarrier, Machine, MachineConfig


def phased_run(protocol, n=8, phases=4, writes_per_phase=4, seed=0):
    cfg = MachineConfig(n_nodes=n, cache_blocks=256, cache_assoc=2, seed=seed)
    m = Machine(cfg, protocol=protocol)
    region = [m.alloc_block() for _ in range(n)]
    bar = HWBarrier(m, n=n)
    amap = m.amap

    def driver(p):
        me = p.node_id
        prev_src = None
        for phase in range(phases):
            src = (me + 1 + phase) % n  # a different producer every phase
            addr_in = amap.word_addr(region[src], 0)
            addr_out = amap.word_addr(region[me], 0)
            if protocol == "primitives":
                if prev_src is not None and prev_src != src:
                    yield from p.reset_update(amap.word_addr(region[prev_src], 0))
                yield from p.read_update(addr_in)
            else:
                yield from p.read(addr_in)  # registers forever
            for k in range(writes_per_phase):
                if protocol == "primitives":
                    yield from p.write_global(addr_out, phase * 100 + k)
                else:
                    yield from p.write(addr_out, phase * 100 + k)
            if protocol == "primitives":
                yield from p.flush()
            yield from p.read(addr_in)
            yield from p.barrier(bar)
            prev_src = src

    for i in range(n):
        m.spawn(driver(m.processor(i)), name=f"phased-{i}")
    m.run()
    met = m.metrics()
    pushes = sum(
        v
        for k, v in met.msg_by_type.items()
        if k in ("RU_UPDATE", "RU_UPDATE_FWD", "WU_UPDATE")
    )
    return met.completion_time, pushes, met.messages


def test_ru_vs_wu_stale_subscribers(benchmark):
    res = benchmark.pedantic(
        lambda: {p: phased_run(p) for p in ("primitives", "writeupdate")},
        rounds=1,
        iterations=1,
    )
    rows = [
        [p, fmt(res[p][0], 0), res[p][1], res[p][2]]
        for p in ("primitives", "writeupdate")
    ]
    print_table(
        "Reader- vs sender-initiated updates (phased workload, n=8)",
        ["protocol", "completion", "update pushes", "total msgs"],
        rows,
    )
    ru_pushes = res["primitives"][1]
    wu_pushes = res["writeupdate"][1]
    # Write-update accumulates stale subscribers: strictly more pushes.
    assert wu_pushes > ru_pushes
    benchmark.extra_info["results"] = {
        p: {"time": r[0], "pushes": r[1], "msgs": r[2]} for p, r in res.items()
    }


def test_wu_push_growth_with_phases(benchmark):
    """Stale-subscriber waste grows with the number of phases."""

    def growth():
        out = {}
        for phases in (2, 6):
            _t, pushes, _m = phased_run("writeupdate", phases=phases)
            out[phases] = pushes / phases  # pushes per phase
        return out

    per_phase = benchmark.pedantic(growth, rounds=1, iterations=1)
    print_table(
        "WU pushes per phase (subscribers accumulate)",
        ["phases", "pushes/phase"],
        [[k, fmt(v)] for k, v in per_phase.items()],
    )
    assert per_phase[6] > per_phase[2]
