"""Ablation — interconnect choice and switch buffering.

The paper assumes an Omega network with infinite switch buffers.  This
bench quantifies (a) why a bus is hopeless at scale, (b) how close Omega
gets to an ideal crossbar, and (c) what finite switch buffers cost.
"""

import pytest

from conftest import fmt, print_table
from repro import Machine, MachineConfig
from repro.workloads import SyncModelParams, SyncModelWorkload


def run_net(network, n=16, buffer_capacity=None, seed=2):
    cfg = MachineConfig(
        n_nodes=n, seed=seed, network=network, buffer_capacity=buffer_capacity
    )
    m = Machine(cfg, protocol="primitives")
    wl = SyncModelWorkload(
        m, SyncModelParams(grain_size=50, tasks_per_node=4), lock_scheme="cbl"
    )
    res = wl.run()
    return res.completion_time


def test_network_comparison(benchmark):
    nets = ("crossbar", "omega", "bus")
    res = benchmark.pedantic(
        lambda: {net: run_net(net) for net in nets}, rounds=1, iterations=1
    )
    print_table(
        "Interconnect ablation (sync model, n=16, CBL)",
        ["network", "completion (cycles)"],
        [[net, fmt(res[net], 0)] for net in nets],
    )
    # Crossbar <= omega << bus.
    assert res["crossbar"] <= res["omega"]
    assert res["omega"] < res["bus"]
    benchmark.extra_info["results"] = res


def test_finite_switch_buffers(benchmark):
    res = benchmark.pedantic(
        lambda: {
            "infinite": run_net("omega"),
            "buffered-4": run_net("omega-buffered", buffer_capacity=4),
            "buffered-1": run_net("omega-buffered", buffer_capacity=1),
        },
        rounds=1,
        iterations=1,
    )
    print_table(
        "Switch-buffer ablation (omega, n=16)",
        ["buffers", "completion (cycles)"],
        [[k, fmt(v, 0)] for k, v in res.items()],
    )
    # At this offered load finite buffers barely matter: the two network
    # models must agree closely (the analytic model reserves wires in send
    # order, the buffered one serves in arrival order, so small deviations
    # in either direction are expected).  Heavy-hotspot backpressure is
    # exercised separately in the network unit tests.
    for k in ("buffered-1", "buffered-4"):
        assert abs(res[k] - res["infinite"]) / res["infinite"] < 0.15, k
    benchmark.extra_info["results"] = res
