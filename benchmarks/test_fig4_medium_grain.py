"""Figure 4 — completion time vs processors, medium-granularity parallelism.

Five series, as in the paper: WBI and CBL under the sync workload model
(comparable, the two bottom curves), and Q-WBI / Q-backoff / Q-CBL under
the work-queue model, where the single queue lock concentrates contention:
Q-WBI stops scaling beyond ~16 nodes, exponential backoff helps but does
not scale, and Q-CBL keeps scaling.
"""

from conftest import fmt, print_table
from figures_common import FIG45_SERIES, sweep

NS = (2, 4, 8, 16, 32, 64)
GRAIN = "medium"


def test_fig4(benchmark):
    data = benchmark.pedantic(
        lambda: sweep(NS, FIG45_SERIES, GRAIN), rounds=1, iterations=1
    )
    rows = [[label] + [fmt(data[label][n], 0) for n in NS] for label, _m, _s in FIG45_SERIES]
    print_table(
        f"Figure 4: completion time (cycles), {GRAIN} grain",
        ["series"] + [f"n={n}" for n in NS],
        rows,
    )
    big = NS[-1]
    # The paper's qualitative claims at medium granularity:
    # 1. Work-queue WBI collapses at scale: far worse than Q-CBL (the gap
    #    accelerates with n: ~5x at 32 nodes, ~10x at 64).
    assert data["Q-WBI"][big] > 2.5 * data["Q-CBL"][big]
    assert (
        data["Q-WBI"][64] / data["Q-CBL"][64] > data["Q-WBI"][16] / data["Q-CBL"][16]
    )
    # 2. Backoff rescues much of the loss but still trails CBL.
    assert data["Q-backoff"][big] < data["Q-WBI"][big]
    assert data["Q-backoff"][big] > data["Q-CBL"][big]
    # 3. Under the (low-contention) sync model the schemes are comparable:
    #    within ~2x of each other, and both far below the queue-model curves.
    assert data["WBI"][big] < 2 * data["CBL"][big] + 1
    assert data["WBI"][big] < data["Q-WBI"][big]
    # 4. The Q-WBI divergence sets in past ~8-16 nodes: its growth factor
    #    from 16->32 exceeds Q-CBL's.
    growth_wbi = data["Q-WBI"][32] / data["Q-WBI"][16]
    growth_cbl = data["Q-CBL"][32] / data["Q-CBL"][16]
    assert growth_wbi > growth_cbl
    benchmark.extra_info["series"] = {k: v for k, v in data.items()}
