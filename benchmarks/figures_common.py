"""Shared sweep machinery for the Figure 4-7 benchmarks."""

from repro import Machine, MachineConfig
from repro.workloads import (
    GRAIN_SIZES,
    SyncModelParams,
    SyncModelWorkload,
    WorkQueueParams,
    WorkQueueWorkload,
)

__all__ = ["run_point", "sweep", "FIG45_SERIES"]

#: Series of Figures 4 and 5: (label, workload model, lock scheme).
FIG45_SERIES = (
    ("WBI", "sync", "tts"),
    ("CBL", "sync", "cbl"),
    ("Q-WBI", "queue", "tts"),
    ("Q-backoff", "queue", "tts_backoff"),
    ("Q-CBL", "queue", "cbl"),
)


def run_point(
    n: int,
    model: str,
    lock_scheme: str,
    grain: str,
    consistency: str = "sc",
    tasks_per_node: int = 4,
    seed: int = 1,
):
    """One (n, series) sample; returns completion time in cycles."""
    protocol = "primitives" if lock_scheme == "cbl" else "wbi"
    cfg = MachineConfig(n_nodes=n, seed=seed)
    machine = Machine(cfg, protocol=protocol)
    grain_size = GRAIN_SIZES[grain]
    if model == "sync":
        wl = SyncModelWorkload(
            machine,
            SyncModelParams(grain_size=grain_size, tasks_per_node=tasks_per_node),
            lock_scheme=lock_scheme,
            consistency=consistency,
        )
    elif model == "queue":
        wl = WorkQueueWorkload(
            machine,
            WorkQueueParams(n_tasks=tasks_per_node * n, grain_size=grain_size),
            lock_scheme=lock_scheme,
            consistency=consistency,
        )
    else:
        raise ValueError(f"unknown model {model!r}")
    res = wl.run()
    return res.completion_time


def sweep(ns, series, grain, **kw):
    """completion[label][n] for every series over the node counts."""
    out = {}
    for label, model, scheme in series:
        out[label] = {n: run_point(n, model, scheme, grain, **kw) for n in ns}
    return out
