"""Shared sweep machinery for the Figure 4-7 benchmarks.

The point function itself lives in :func:`repro.experiments.fig_point`
(top-level and JSON-in/JSON-out, so the parallel sweep runner's workers can
resolve it by dotted path); this module keeps the benchmark-facing helpers.
``sweep`` dispatches through :mod:`repro.sweep`, so the figure benchmarks
get the same parallelism and on-disk result cache as the report generator —
set ``REPRO_SWEEP_JOBS``/``REPRO_SWEEP_CACHE`` to tune.
"""

import os

from repro.experiments import FIG45_SERIES, fig_point
from repro.sweep import SweepTask, run_sweep

__all__ = ["run_point", "sweep", "FIG45_SERIES"]


def run_point(
    n: int,
    model: str,
    lock_scheme: str,
    grain: str,
    consistency: str = "sc",
    tasks_per_node: int = 4,
    seed: int = 1,
):
    """One (n, series) sample; returns completion time in cycles."""
    return fig_point(
        n, model, lock_scheme, grain,
        consistency=consistency, tasks_per_node=tasks_per_node, seed=seed,
    )


def sweep(ns, series, grain, jobs=None, cache_dir=None, **kw):
    """completion[label][n] for every series over the node counts."""
    tasks = [
        SweepTask(
            "repro.experiments:fig_point",
            {"n": n, "model": model, "scheme": scheme, "grain": grain, **kw},
        )
        for _label, model, scheme in series
        for n in ns
    ]
    use_cache = cache_dir is not None or "REPRO_SWEEP_CACHE" in os.environ
    flat = run_sweep(tasks, jobs=jobs, cache_dir=cache_dir, use_cache=use_cache)
    out = {}
    i = 0
    for label, _model, _scheme in series:
        out[label] = {}
        for n in ns:
            out[label][n] = flat[i]
            i += 1
    return out
