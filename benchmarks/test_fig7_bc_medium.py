"""Figure 7 — buffered vs sequential consistency, medium granularity.

Same comparison as Figure 6 at medium grain: more task-execution
references dilute the (already rare) global writes further, so the BC
advantage stays modest.
"""

from conftest import fmt, print_table
from figures_common import run_point

NS = (2, 4, 8, 16, 32)
GRAIN = "medium"


def test_fig7(benchmark):
    def sweep_bc_sc():
        return {
            label: {n: run_point(n, "queue", "cbl", GRAIN, consistency=c) for n in NS}
            for label, c in (("SC-CBL", "sc"), ("BC-CBL", "bc"))
        }

    data = benchmark.pedantic(sweep_bc_sc, rounds=1, iterations=1)
    rows = [
        [label] + [fmt(data[label][n], 0) for n in NS] for label in ("SC-CBL", "BC-CBL")
    ]
    rows.append(
        ["improvement %"]
        + [fmt(100 * (1 - data["BC-CBL"][n] / data["SC-CBL"][n]), 1) for n in NS]
    )
    print_table(
        f"Figure 7: BC vs SC completion time, {GRAIN} grain",
        ["series"] + [f"n={n}" for n in NS],
        rows,
    )
    for n in NS:
        assert data["BC-CBL"][n] <= data["SC-CBL"][n] * 1.02, n
    worst_gain = max(1 - data["BC-CBL"][n] / data["SC-CBL"][n] for n in NS)
    assert worst_gain < 0.4  # "not very impressive", as the paper says
    benchmark.extra_info["series"] = data
