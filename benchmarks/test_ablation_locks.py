"""Ablation — lock scheme shoot-out (beyond the paper's WBI-vs-CBL pair).

Adds the modern software baselines (ticket, MCS) the paper predates: MCS
also spins locally and scales linearly, so the interesting question is how
close a software queue lock gets to the hardware one.  CBL retains the
constant-factor edge because its grant carries the protected data and its
handoff is two network transits.
"""

import pytest

from conftest import fmt, print_table
from repro import Machine, MachineConfig
from repro.workloads import make_lock

SCHEMES = ("cbl", "mcs", "ticket", "tts", "tts_backoff", "ts")


def parallel_lock(n, scheme, t_cs=50, seed=3):
    protocol = "primitives" if scheme == "cbl" else "wbi"
    cfg = MachineConfig(n_nodes=n, cache_blocks=256, cache_assoc=2, seed=seed)
    m = Machine(cfg, protocol=protocol)
    lock = make_lock(m, scheme)

    def w(p):
        yield from p.acquire(lock)
        yield from p.compute(t_cs)
        yield from p.release(lock)

    for i in range(n):
        m.spawn(w(m.processor(i)))
    m.run()
    return m.sim.now, m.net.message_count


@pytest.mark.parametrize("n", [16])
def test_lock_shootout(benchmark, n):
    res = benchmark.pedantic(
        lambda: {s: parallel_lock(n, s) for s in SCHEMES}, rounds=1, iterations=1
    )
    rows = [[s, fmt(res[s][0], 0), res[s][1]] for s in SCHEMES]
    print_table(f"Lock shoot-out, n={n} contenders", ["scheme", "time", "messages"], rows)
    # Hardware queue lock wins outright.
    for s in SCHEMES[1:]:
        assert res["cbl"][0] <= res[s][0], s
        assert res["cbl"][1] <= res[s][1], s
    # The software queue lock (MCS) beats spinning in both time and traffic.
    assert res["mcs"][0] < res["tts"][0]
    assert res["mcs"][1] < res["tts"][1]
    assert res["mcs"][1] < res["ts"][1]
    benchmark.extra_info["results"] = {s: {"time": r[0], "msgs": r[1]} for s, r in res.items()}


def test_mcs_scales_linearly(benchmark):
    def sweep():
        return {n: parallel_lock(n, "mcs")[1] for n in (4, 8, 16)}

    msgs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("MCS message scaling", ["n", "messages"], [[n, m] for n, m in msgs.items()])
    # Messages per contender stay bounded (queue lock: O(1) per handoff).
    per4 = msgs[4] / 4
    per16 = msgs[16] / 16
    assert per16 < per4 * 2.5
