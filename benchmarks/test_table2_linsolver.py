"""Table 2 — cache-coherence cost of the linear equation solver.

Regenerates the paper's table analytically (the printed closed forms) and
validates the same ordering on the simulator: per-iteration read-update
completion time beats both invalidation layouts, and the read side of the
invalidation schemes dominates their traffic.
"""

import pytest

from conftest import fmt, print_table
from repro.analysis import TransactionCosts, table2
from repro.workloads import run_linsolver

B = 4
COSTS = TransactionCosts()


def _analytic_rows(n):
    t = table2(n, B, COSTS)
    rows = []
    for op in ("initial_load", "write", "read"):
        rows.append(
            [op]
            + [
                f"{fmt(t[s][op].traffic)} / {fmt(t[s][op].latency)}"
                for s in ("read-update", "inv-I", "inv-II")
            ]
        )
    return rows


@pytest.mark.parametrize("n", [8, 16, 64])
def test_table2_analytic(benchmark, n):
    """The closed forms of Table 2 (traffic / critical-path latency)."""
    result = benchmark.pedantic(lambda: table2(n, B, COSTS), rounds=1, iterations=1)
    print_table(
        f"Table 2 (analytic), n={n}, B={B}  [traffic / latency]",
        ["operation", "read-update", "inv-I", "inv-II"],
        _analytic_rows(n),
    )
    ru, i1, i2 = (result[s] for s in ("read-update", "inv-I", "inv-II"))
    # Paper's qualitative claims:
    assert ru["read"].traffic == 0  # reads are free after subscription
    assert i2["read"].traffic > i1["read"].traffic  # inv-II reloads n blocks
    assert ru["write"].latency < i1["write"].latency  # updates off the path
    benchmark.extra_info["read_traffic"] = {
        "read-update": ru["read"].traffic,
        "inv-I": i1["read"].traffic,
        "inv-II": i2["read"].traffic,
    }


@pytest.mark.parametrize("n", [8, 16])
def test_table2_simulated(benchmark, n):
    """The same scenario executed on the full simulator."""

    def run_all():
        return {
            s: run_linsolver(n, s, iterations=4, cache_blocks=256, cache_assoc=2)
            for s in ("read-update", "inv-I", "inv-II")
        }

    res = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [
            s,
            fmt(res[s].completion_time, 0),
            fmt(res[s].extra["per_iteration"]["messages"]),
            fmt(res[s].extra["per_iteration"]["flits"]),
        ]
        for s in ("read-update", "inv-I", "inv-II")
    ]
    print_table(
        f"Table 2 (simulated), n={n}, B={B}",
        ["scheme", "completion(cycles)", "msgs/iter", "flits/iter"],
        rows,
    )
    # Shape: read-update completes fastest (reads hit locally); inv-II
    # moves the most data (one element per block).
    assert res["read-update"].completion_time < res["inv-I"].completion_time
    assert res["read-update"].completion_time < res["inv-II"].completion_time
    assert (
        res["inv-II"].extra["per_iteration"]["flits"]
        > res["inv-I"].extra["per_iteration"]["flits"]
    )
    benchmark.extra_info["completion"] = {s: res[s].completion_time for s in res}
