#!/usr/bin/env python
"""Perf smoke: wall-clock throughput of the three protocols on omega.

Times one small lock-free workload (shared writes, neighbour reads, an
atomic counter, a hardware barrier per round) on each data protocol and
writes machine-readable timings to ``BENCH_PR3.json``.  Also reports —
informationally, never as a gate — the overhead of running the same
workload with the trace bus enabled, so a tracing-cost regression shows
up in the CI artifact history.

Run:  python benchmarks/perf_smoke.py [--out BENCH_PR3.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import HWBarrier, Machine, MachineConfig, ObsParams  # noqa: E402

N_NODES = 8
ROUNDS = 12
REPEATS = 3
PROTOCOLS = ("wbi", "primitives", "writeupdate")


def run_once(protocol: str, obs: ObsParams | None = None):
    """One run; returns (completion_cycles, wall_seconds, sim_events)."""
    cfg = MachineConfig(n_nodes=N_NODES, seed=5, network="omega", obs=obs)
    machine = Machine(cfg, protocol=protocol)
    bar = HWBarrier(machine, n=N_NODES)
    slots = [machine.alloc_word() for _ in range(N_NODES)]
    ctr = machine.alloc_word()

    def worker(proc, t):
        for r in range(ROUNDS):
            yield from proc.compute(10)
            yield from proc.shared_write(slots[t], r + 1)
            yield from proc.shared_read(slots[(t + 1) % N_NODES])
            yield from proc.rmw(ctr, "fetch_add", 1)
            yield from proc.barrier(bar)

    for t in range(N_NODES):
        proc = machine.processor(t, consistency="sc")
        machine.spawn(worker(proc, t), name=f"smoke-{t}")
    t0 = time.perf_counter()
    machine.run_all()
    wall = time.perf_counter() - t0
    return machine.metrics().completion_time, wall, machine.sim.events_processed


def measure(protocol: str, obs: ObsParams | None = None) -> dict:
    """Best-of-REPEATS timing for one configuration."""
    best = None
    for _ in range(REPEATS):
        cycles, wall, events = run_once(protocol, obs=obs)
        if best is None or wall < best[1]:
            best = (cycles, wall, events)
    cycles, wall, events = best
    return {
        "bench": protocol + ("+trace" if obs is not None else ""),
        "cycles": cycles,
        "wall_seconds": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="BENCH_PR3.json", help="output JSON path")
    args = ap.parse_args(argv)

    entries = [measure(p) for p in PROTOCOLS]
    traced = [measure(p, obs=ObsParams()) for p in PROTOCOLS]
    entries += traced

    rows = {e["bench"]: e for e in entries}
    print(f"{'bench':<20} {'cycles':>10} {'wall_s':>9} {'events/s':>12}")
    for e in entries:
        print(
            f"{e['bench']:<20} {e['cycles']:>10.0f} {e['wall_seconds']:>9.4f} "
            f"{e['events_per_sec']:>12.0f}"
        )
    for p in PROTOCOLS:
        base, tr = rows[p], rows[p + "+trace"]
        if base["wall_seconds"] > 0:
            ratio = tr["wall_seconds"] / base["wall_seconds"]
            print(f"tracing overhead on {p}: {100 * (ratio - 1):+.1f}% wall-clock")

    with open(args.out, "w") as fh:
        json.dump(entries, fh, indent=2)
    print(f"wrote {args.out} ({len(entries)} entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
