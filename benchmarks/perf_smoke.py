#!/usr/bin/env python
"""Perf smoke: wall-clock throughput of the three protocols on omega.

Times one small lock-free workload (shared writes, neighbour reads, an
atomic counter, a hardware barrier per round) on each data protocol and
writes machine-readable timings to ``BENCH_PR3.json``.  Also reports —
informationally, never as a gate — the overhead of running the same
workload with the trace bus enabled, so a tracing-cost regression shows
up in the CI artifact history.

The PR4 section additionally measures the kernel fast path and the sweep
runner, writing before/after numbers to ``BENCH_PR4.json``:

* **kernel microbenchmark** — events/sec of the zero-delay-lane discipline
  vs. the heap-only discipline on a large calendar of message-style
  processes (the regime protocol simulations live in);
* **machine workload** — the same protocol smoke, both disciplines;
* **sweep** — wall-clock of a small figure sweep cold vs. re-run against
  the on-disk result cache.

The gates are *ratios* measured in the same process on the same machine
(fast vs. heap, cold vs. cached), so they are load- and hardware-
independent; ``--check-floors`` re-reads the JSON and fails CI when a
ratio regresses below its pinned floor.

The PR8 section times the traffic frontend's demand generator (the
open-loop schedule builder: arrivals + client multiplexing + Zipf keys
for ~1M requests over a 2M-client population) and writes
``BENCH_PR8.json``.  Its gate is an *absolute* requests/sec floor —
deliberately set an order of magnitude below the measured rate, so it
only fires if schedule building falls off the vectorized path (e.g. a
per-request python loop sneaking in), not on runner load.

The PR9 section is a per-layer microbenchmark suite writing
``BENCH_PR9.json``:

* **kernel drain** — events/sec draining a prefilled same-instant burst
  over deep ballast, per calendar discipline.  This isolates the batched
  dispatch loop (what PR9 optimized) from event *creation* (a workload-
  side cost both disciplines share); gate: batched/heap >= 3x.
* **vectorized rounds** — references/sec compiling sync-model task plans,
  numpy builder vs. the scalar referee; gate: >= 4x.
* **quick report** — wall-clock of one cold ``--quick`` report
  regeneration, gated by a deliberately generous absolute ceiling so only
  an algorithmic cliff (not runner load) can trip it.

Run:  python benchmarks/perf_smoke.py [--out BENCH_PR3.json]
                                      [--pr4-out BENCH_PR4.json]
                                      [--pr8-out BENCH_PR8.json]
                                      [--pr9-out BENCH_PR9.json]
      python benchmarks/perf_smoke.py --check-floors BENCH_PR4.json
      python benchmarks/perf_smoke.py --check-floors BENCH_PR8.json
      python benchmarks/perf_smoke.py --check-floors BENCH_PR9.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import HWBarrier, Machine, MachineConfig, ObsParams  # noqa: E402

N_NODES = 8
ROUNDS = 12
REPEATS = 3
PROTOCOLS = ("wbi", "primitives", "writeupdate")

# Pinned ratio floors for the PR4 gates (see module docstring).
KERNEL_SPEEDUP_FLOOR = 1.5
SWEEP_CACHED_SPEEDUP_FLOOR = 3.0

# Absolute floor for the PR8 demand-generator gate: measured ~2-7M req/s;
# the floor is >10x below that so it only catches algorithmic regressions.
DEMAND_THROUGHPUT_FLOOR = 200_000.0

# PR9 gates: batched drain loop vs. heap referee (measured ~4.5x), numpy
# round compilation vs. the scalar referee (measured >10x at coarse grain),
# and a generous absolute ceiling on one cold --quick report regeneration.
KERNEL_BATCHED_SPEEDUP_FLOOR = 3.0
ROUNDS_VECTOR_SPEEDUP_FLOOR = 4.0
REPORT_QUICK_WALL_CEILING = 600.0


def run_once(protocol: str, obs: ObsParams | None = None, fast_path: bool | None = None):
    """One run; returns (completion_cycles, wall_seconds, sim_events)."""
    cfg = MachineConfig(n_nodes=N_NODES, seed=5, network="omega", obs=obs)
    machine = Machine(cfg, protocol=protocol, fast_path=fast_path)
    bar = HWBarrier(machine, n=N_NODES)
    slots = [machine.alloc_word() for _ in range(N_NODES)]
    ctr = machine.alloc_word()

    def worker(proc, t):
        for r in range(ROUNDS):
            yield from proc.compute(10)
            yield from proc.shared_write(slots[t], r + 1)
            yield from proc.shared_read(slots[(t + 1) % N_NODES])
            yield from proc.rmw(ctr, "fetch_add", 1)
            yield from proc.barrier(bar)

    for t in range(N_NODES):
        proc = machine.processor(t, consistency="sc")
        machine.spawn(worker(proc, t), name=f"smoke-{t}")
    t0 = time.perf_counter()
    machine.run_all()
    wall = time.perf_counter() - t0
    return machine.metrics().completion_time, wall, machine.sim.events_processed


def measure(protocol: str, obs: ObsParams | None = None, fast_path: bool | None = None) -> dict:
    """Best-of-REPEATS timing for one configuration."""
    best = None
    for _ in range(REPEATS):
        cycles, wall, events = run_once(protocol, obs=obs, fast_path=fast_path)
        if best is None or wall < best[1]:
            best = (cycles, wall, events)
    cycles, wall, events = best
    return {
        "bench": protocol + ("+trace" if obs is not None else ""),
        "cycles": cycles,
        "wall_seconds": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }


# --------------------------------------------------------------- PR4 section


def kernel_microbench(
    fast: bool, ballast: int = 2048, burst: int = 64, rounds: int = 500
) -> dict:
    """Pure-kernel events/sec in the regime the zero-delay lane targets:
    bursts of same-instant events processed while the calendar holds a deep
    backlog of future timeouts (``ballast`` — outstanding protocol timeout
    guards, in a real run).  Every zero-delay push/pop the heap discipline
    performs is O(log ballast); the lane makes them O(1)."""
    from repro.sim.core import Simulator

    def driver(sim):
        for _ in range(rounds):
            for _ in range(burst):
                sim.timeout(0)
            yield sim.timeout(1)

    best = None
    for _ in range(REPEATS):
        sim = Simulator(fast_path=fast)
        for i in range(ballast):
            sim.timeout(10**9 + i)
        sim.process(driver(sim))
        t0 = time.perf_counter()
        sim.run(until=rounds + 2)
        wall = time.perf_counter() - t0
        if best is None or wall < best[0]:
            best = (wall, sim.events_processed)
    wall, events = best
    return {
        "ballast": ballast,
        "burst": burst,
        "rounds": rounds,
        "events": events,
        "wall_seconds": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }


def sweep_bench() -> dict:
    """The full ``python -m repro.experiments`` sweep three ways: serial
    cold (the pre-PR driver), parallel cold against a fresh cache, and a
    cached re-run.  The gate is serial-cold vs. cached (load-independent);
    the parallel-cold number records what the worker pool alone buys on
    this runner's core count."""
    import io

    from repro.experiments import run_report
    from repro.sweep import SweepStats, default_jobs

    def timed(**kw):
        stats = SweepStats()
        t0 = time.perf_counter()
        run_report(io.StringIO(), stats=stats, **kw)
        return time.perf_counter() - t0, stats

    cache = tempfile.mkdtemp(prefix="bench-sweep-cache-")
    try:
        serial_wall, serial = timed(jobs=1, use_cache=False)
        parallel_wall, parallel = timed(jobs=default_jobs(), cache_dir=cache)
        cached_wall, cached = timed(jobs=default_jobs(), cache_dir=cache)
    finally:
        shutil.rmtree(cache, ignore_errors=True)
    assert cached.hits == cached.total, "warm re-run recomputed points"
    return {
        "points": serial.total,
        "jobs": parallel.jobs,
        "serial_cold_seconds": serial_wall,
        "parallel_cold_seconds": parallel_wall,
        "cached_seconds": cached_wall,
        "parallel_speedup": serial_wall / parallel_wall if parallel_wall > 0 else 0.0,
        "cached_speedup": serial_wall / cached_wall if cached_wall > 0 else float("inf"),
    }


def run_pr4(out_path: str) -> dict:
    """Measure the PR4 before/after set and write ``BENCH_PR4.json``."""
    kb_heap = kernel_microbench(fast=False)
    kb_fast = kernel_microbench(fast=True)
    kernel_speedup = (
        kb_fast["events_per_sec"] / kb_heap["events_per_sec"]
        if kb_heap["events_per_sec"] > 0 else 0.0
    )
    mw_heap = measure("primitives", fast_path=False)
    mw_fast = measure("primitives", fast_path=True)
    machine_speedup = (
        mw_fast["events_per_sec"] / mw_heap["events_per_sec"]
        if mw_heap["events_per_sec"] > 0 else 0.0
    )
    sweep = sweep_bench()
    doc = {
        "kernel_microbench": {
            "before_heap": kb_heap,
            "after_fast": kb_fast,
            "speedup": kernel_speedup,
        },
        "machine_workload": {
            "before_heap": {k: mw_heap[k] for k in ("wall_seconds", "events_per_sec")},
            "after_fast": {k: mw_fast[k] for k in ("wall_seconds", "events_per_sec")},
            "speedup": machine_speedup,
        },
        "sweep": sweep,
        "floors": {
            "kernel_speedup_min": KERNEL_SPEEDUP_FLOOR,
            "sweep_cached_speedup_min": SWEEP_CACHED_SPEEDUP_FLOOR,
        },
    }
    with open(out_path, "w") as fh:
        json.dump(doc, fh, indent=2)
    print(
        f"kernel fast path: {kb_fast['events_per_sec']:,.0f} ev/s vs "
        f"{kb_heap['events_per_sec']:,.0f} heap = {kernel_speedup:.2f}x "
        f"(floor {KERNEL_SPEEDUP_FLOOR}x)"
    )
    print(
        f"machine workload: {machine_speedup:.2f}x events/sec (informational)"
    )
    print(
        f"sweep ({sweep['points']} points): serial cold "
        f"{sweep['serial_cold_seconds']:.1f}s, parallel cold "
        f"{sweep['parallel_cold_seconds']:.1f}s ({sweep['jobs']} jobs, "
        f"{sweep['parallel_speedup']:.2f}x), cached "
        f"{sweep['cached_seconds']:.2f}s ({sweep['cached_speedup']:.1f}x, "
        f"floor {SWEEP_CACHED_SPEEDUP_FLOOR}x)"
    )
    print(f"wrote {out_path}")
    return doc


def demand_bench() -> dict:
    """Demand-generator throughput: requests/sec of the open-loop schedule
    builder (arrivals, client multiplexing, Zipf keys) at million-request
    scale.  Best of ``REPEATS`` runs — the gate is about the vectorized
    path staying vectorized, not about runner load."""
    import numpy as np

    from repro.workloads.demand import DemandParams, OpenLoopDemand

    params = DemandParams(
        process="poisson",
        rate=20.0,
        horizon=50_000.0,
        n_clients=2_000_000,
        n_keys=1_024,
    )
    dem = OpenLoopDemand(params)
    dem.build(np.random.default_rng(0))  # warm numpy / allocators
    best = float("inf")
    requests = 0
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        sched = dem.build(np.random.default_rng(1))
        best = min(best, time.perf_counter() - t0)
        requests = sched.n_requests
    return {
        "requests": requests,
        "n_clients": params.n_clients,
        "wall_seconds": best,
        "requests_per_sec": requests / best if best > 0 else 0.0,
    }


def run_pr8(out_path: str) -> dict:
    """Measure the PR8 traffic-frontend set and write ``BENCH_PR8.json``."""
    demand = demand_bench()
    doc = {
        "demand_generator": demand,
        "floors": {
            "demand_requests_per_sec_min": DEMAND_THROUGHPUT_FLOOR,
        },
    }
    with open(out_path, "w") as fh:
        json.dump(doc, fh, indent=2)
    print(
        f"demand generator: {demand['requests']:,} requests over "
        f"{demand['n_clients']:,} clients in {demand['wall_seconds']:.3f}s = "
        f"{demand['requests_per_sec']:,.0f} req/s "
        f"(floor {DEMAND_THROUGHPUT_FLOOR:,.0f})"
    )
    print(f"wrote {out_path}")
    return doc


# --------------------------------------------------------------- PR9 section


def kernel_drain_bench(calendar: str, n_events: int = 100_000, ballast: int = 8192) -> dict:
    """Drain-loop events/sec for one calendar discipline.

    The calendar is prefilled with ``n_events`` same-instant zero-delay
    timeouts over ``ballast`` far-future guards, then ``run(until=0)`` is
    timed.  Creation happens before the clock starts, so this measures
    exactly the dispatch loop the batched kernel rewrote; the heap
    discipline pays an O(log ballast) pop per event where the lane pays a
    ``popleft``."""
    from repro.sim.core import Simulator

    best = None
    for _ in range(REPEATS):
        sim = Simulator(calendar=calendar)
        for i in range(ballast):
            sim.timeout(10**9 + i)
        for _ in range(n_events):
            sim.timeout(0)
        t0 = time.perf_counter()
        sim.run(until=0)
        wall = time.perf_counter() - t0
        assert sim.events_processed == n_events
        if best is None or wall < best:
            best = wall
    return {
        "calendar": calendar,
        "events": n_events,
        "ballast": ballast,
        "wall_seconds": best,
        "events_per_sec": n_events / best if best > 0 else 0.0,
    }


def rounds_bench(grain: int = 200, tasks: int = 400) -> dict:
    """Round-compilation references/sec: numpy round compiler vs. the
    scalar referee, both fed the *same* pre-drawn inputs.  The RNG draws
    are deliberately outside the timed region — both paths must consume
    bit-identical draw streams (REPORT byte-identity), so draw cost is a
    shared constant; the gate measures the per-round state-update
    computation that PR9 actually vectorized.  Grain 200 is the paper's
    coarse setting, where the Fig 4-7 sweeps spend their time."""
    import numpy as np

    from repro.workloads.rounds import (
        RoundScratch,
        _compile_sync_round,
        _compile_sync_round_scalar,
        build_sync_task_plan,
        build_sync_task_plan_scalar,
    )
    from repro.workloads.syncmodel import SyncModelParams

    params = SyncModelParams(grain_size=grain)
    shared = np.arange(100, 100 + params.n_shared_blocks, dtype=np.int64)
    wpb = 8
    scratch = RoundScratch(params, shared, wpb)

    rng = np.random.default_rng(7)
    drawn = [
        (
            rng.random((grain, 3)),
            rng.integers(0, params.n_shared_blocks, size=grain),
            rng.integers(0, wpb, size=grain),
        )
        for _ in range(tasks)
    ]

    def timed(compile_one) -> float:
        best = None
        for _ in range(REPEATS):
            last = fresh = 10_000
            t0 = time.perf_counter()
            for d, b, o in drawn:
                plan, last, fresh = compile_one(d, b, o, last, fresh)
            wall = time.perf_counter() - t0
            if best is None or wall < best:
                best = wall
        return best

    # Referee sanity: identical plans from identical draws, every task.
    rng_v = np.random.default_rng(3)
    rng_s = np.random.default_rng(3)
    lv = fv = ls = fs = 10_000
    for _ in range(5):
        pv, lv, fv = build_sync_task_plan(params, shared, wpb, rng_v, lv, fv, scratch)
        ps, ls, fs = build_sync_task_plan_scalar(params, shared, wpb, rng_s, ls, fs)
        assert pv == ps and (lv, fv) == (ls, fs), "plan builders diverged"

    scalar_wall = timed(
        lambda d, b, o, last, fresh: _compile_sync_round_scalar(
            params, shared, wpb, d, b, o, last, fresh
        )
    )
    vector_wall = timed(
        lambda d, b, o, last, fresh: _compile_sync_round(wpb, d, b, o, last, fresh, scratch)
    )
    refs = grain * tasks
    return {
        "grain": grain,
        "tasks": tasks,
        "refs": refs,
        "scalar_wall_seconds": scalar_wall,
        "vector_wall_seconds": vector_wall,
        "scalar_refs_per_sec": refs / scalar_wall if scalar_wall > 0 else 0.0,
        "vector_refs_per_sec": refs / vector_wall if vector_wall > 0 else 0.0,
        "speedup": scalar_wall / vector_wall if vector_wall > 0 else 0.0,
    }


def report_quick_bench() -> dict:
    """One cold ``--quick`` report regeneration, wall-clock."""
    import io

    from repro.experiments import run_report
    from repro.sweep import default_jobs

    t0 = time.perf_counter()
    run_report(io.StringIO(), quick=True, jobs=default_jobs(), use_cache=False)
    wall = time.perf_counter() - t0
    return {"quick": True, "jobs": default_jobs(), "wall_seconds": wall}


def run_pr9(out_path: str) -> dict:
    """Measure the PR9 per-layer set and write ``BENCH_PR9.json``."""
    drain = {c: kernel_drain_bench(c) for c in ("heap", "fast", "slotted")}
    batched_speedup = (
        drain["fast"]["events_per_sec"] / drain["heap"]["events_per_sec"]
        if drain["heap"]["events_per_sec"] > 0 else 0.0
    )
    rounds = rounds_bench()
    report = report_quick_bench()
    doc = {
        "kernel_batched": {
            "drain": drain,
            "speedup": batched_speedup,
        },
        "vectorized_rounds": rounds,
        "report_quick": report,
        "floors": {
            "kernel_batched_speedup_min": KERNEL_BATCHED_SPEEDUP_FLOOR,
            "rounds_vector_speedup_min": ROUNDS_VECTOR_SPEEDUP_FLOOR,
            "report_quick_wall_max": REPORT_QUICK_WALL_CEILING,
        },
    }
    with open(out_path, "w") as fh:
        json.dump(doc, fh, indent=2)
    print(
        f"kernel drain: fast {drain['fast']['events_per_sec']:,.0f} ev/s, "
        f"slotted {drain['slotted']['events_per_sec']:,.0f} ev/s, heap "
        f"{drain['heap']['events_per_sec']:,.0f} ev/s -> batched "
        f"{batched_speedup:.2f}x (floor {KERNEL_BATCHED_SPEEDUP_FLOOR}x)"
    )
    print(
        f"vectorized rounds: {rounds['vector_refs_per_sec']:,.0f} refs/s vs "
        f"{rounds['scalar_refs_per_sec']:,.0f} scalar = "
        f"{rounds['speedup']:.2f}x (floor {ROUNDS_VECTOR_SPEEDUP_FLOOR}x)"
    )
    print(
        f"quick report: {report['wall_seconds']:.1f}s "
        f"(ceiling {REPORT_QUICK_WALL_CEILING:.0f}s)"
    )
    print(f"wrote {out_path}")
    return doc


def check_floors(path: str) -> int:
    """CI gate: re-read a benchmark file and fail on a regressed floor.

    Dispatches on the document's keys, so the one flag validates
    ``BENCH_PR4.json`` (ratio floors), ``BENCH_PR8.json`` (absolute
    demand-generator throughput), and ``BENCH_PR9.json`` (batched-kernel
    and vectorized-rounds ratios plus the quick-report ceiling)."""
    with open(path) as fh:
        doc = json.load(fh)
    floors = doc["floors"]
    if "kernel_batched" in doc:
        failures = []
        k = doc["kernel_batched"]["speedup"]
        if k < floors["kernel_batched_speedup_min"]:
            failures.append(
                f"batched kernel drain speedup {k:.2f}x below floor "
                f"{floors['kernel_batched_speedup_min']}x"
            )
        r = doc["vectorized_rounds"]["speedup"]
        if r < floors["rounds_vector_speedup_min"]:
            failures.append(
                f"vectorized rounds speedup {r:.2f}x below floor "
                f"{floors['rounds_vector_speedup_min']}x"
            )
        w = doc["report_quick"]["wall_seconds"]
        if w > floors["report_quick_wall_max"]:
            failures.append(
                f"quick report took {w:.1f}s, over the "
                f"{floors['report_quick_wall_max']:.0f}s ceiling"
            )
        if failures:
            for f in failures:
                print(f"FLOOR VIOLATION: {f}", file=sys.stderr)
            return 1
        print(
            f"floors ok: batched kernel {k:.2f}x >= "
            f"{floors['kernel_batched_speedup_min']}x, vectorized rounds "
            f"{r:.2f}x >= {floors['rounds_vector_speedup_min']}x, quick "
            f"report {w:.1f}s <= {floors['report_quick_wall_max']:.0f}s"
        )
        return 0
    if "demand_generator" in doc:
        rps = doc["demand_generator"]["requests_per_sec"]
        if rps < floors["demand_requests_per_sec_min"]:
            print(
                f"FLOOR VIOLATION: demand generator {rps:,.0f} req/s below "
                f"floor {floors['demand_requests_per_sec_min']:,.0f}",
                file=sys.stderr,
            )
            return 1
        print(
            f"floors ok: demand generator {rps:,.0f} req/s >= "
            f"{floors['demand_requests_per_sec_min']:,.0f}"
        )
        return 0
    failures = []
    k = doc["kernel_microbench"]["speedup"]
    if k < floors["kernel_speedup_min"]:
        failures.append(
            f"kernel fast-path speedup {k:.2f}x below floor "
            f"{floors['kernel_speedup_min']}x"
        )
    s = doc["sweep"]["cached_speedup"]
    if s < floors["sweep_cached_speedup_min"]:
        failures.append(
            f"sweep cached speedup {s:.1f}x below floor "
            f"{floors['sweep_cached_speedup_min']}x"
        )
    if failures:
        for f in failures:
            print(f"FLOOR VIOLATION: {f}", file=sys.stderr)
        return 1
    print(
        f"floors ok: kernel {k:.2f}x >= {floors['kernel_speedup_min']}x, "
        f"sweep cached {s:.1f}x >= {floors['sweep_cached_speedup_min']}x"
    )
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="BENCH_PR3.json", help="output JSON path")
    ap.add_argument(
        "--pr4-out", default="BENCH_PR4.json",
        help="fast-path/sweep benchmark output path ('' to skip)",
    )
    ap.add_argument(
        "--pr8-out", default="BENCH_PR8.json",
        help="demand-generator benchmark output path ('' to skip)",
    )
    ap.add_argument(
        "--pr9-out", default="BENCH_PR9.json",
        help="per-layer microbenchmark output path ('' to skip)",
    )
    ap.add_argument(
        "--check-floors", metavar="BENCH.json", default=None,
        help="validate an existing benchmark file (PR4/PR8/PR9) against its floors and exit",
    )
    args = ap.parse_args(argv)

    if args.check_floors is not None:
        return check_floors(args.check_floors)

    entries = [measure(p) for p in PROTOCOLS]
    traced = [measure(p, obs=ObsParams()) for p in PROTOCOLS]
    entries += traced

    rows = {e["bench"]: e for e in entries}
    print(f"{'bench':<20} {'cycles':>10} {'wall_s':>9} {'events/s':>12}")
    for e in entries:
        print(
            f"{e['bench']:<20} {e['cycles']:>10.0f} {e['wall_seconds']:>9.4f} "
            f"{e['events_per_sec']:>12.0f}"
        )
    for p in PROTOCOLS:
        base, tr = rows[p], rows[p + "+trace"]
        if base["wall_seconds"] > 0:
            ratio = tr["wall_seconds"] / base["wall_seconds"]
            print(f"tracing overhead on {p}: {100 * (ratio - 1):+.1f}% wall-clock")

    with open(args.out, "w") as fh:
        json.dump(entries, fh, indent=2)
    print(f"wrote {args.out} ({len(entries)} entries)")

    if args.pr4_out:
        run_pr4(args.pr4_out)
    if args.pr8_out:
        run_pr8(args.pr8_out)
    if args.pr9_out:
        run_pr9(args.pr9_out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
