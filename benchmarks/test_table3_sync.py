"""Table 3 — cost of synchronization scenarios, WBI vs CBL.

Regenerates the paper's analytic table and validates the same shapes on
the simulator: serial-lock message counts (CBL = 3 exactly), parallel-lock
message complexity (CBL O(n) vs WBI O(n^2)), and barrier costs.
"""

import pytest

from conftest import fmt, print_table
from repro import CBLLock, HWBarrier, Machine, MachineConfig, SWBarrier, TTSLock
from repro.analysis import TimeParams, table3
from repro.network import MessageType

T = TimeParams()


@pytest.mark.parametrize("n", [8, 16, 64])
def test_table3_analytic(benchmark, n):
    result = benchmark.pedantic(lambda: table3(n, T), rounds=1, iterations=1)
    rows = []
    for scenario, d in result.items():
        rows.append(
            [
                scenario,
                f"{fmt(d['wbi'].messages, 0)} msgs / {fmt(d['wbi'].time, 0)}",
                f"{fmt(d['cbl'].messages, 0)} msgs / {fmt(d['cbl'].time, 0)}",
            ]
        )
    print_table(f"Table 3 (analytic), n={n}", ["scenario", "WBI", "CBL"], rows)
    assert result["parallel_lock"]["cbl"].messages < result["parallel_lock"]["wbi"].messages
    assert result["serial_lock"]["cbl"].messages == 3
    assert result["barrier_request"]["cbl"].messages == 2
    benchmark.extra_info["parallel_lock_msgs"] = {
        s: result["parallel_lock"][s].messages for s in ("wbi", "cbl")
    }


def _machine(n, protocol):
    cfg = MachineConfig(n_nodes=n, cache_blocks=256, cache_assoc=2, seed=3)
    return Machine(cfg, protocol=protocol)


def _parallel_lock(n, scheme):
    """n processors request the same lock simultaneously; hold t_cs=50."""
    m = _machine(n, "primitives" if scheme == "cbl" else "wbi")
    lock = CBLLock(m) if scheme == "cbl" else TTSLock(m)

    def w(p):
        yield from p.acquire(lock)
        yield from p.compute(50)
        yield from p.release(lock)

    for i in range(n):
        m.spawn(w(m.processor(i)))
    m.run()
    return m.sim.now, m.net.message_count


def _serial_lock(scheme):
    m = _machine(4, "primitives" if scheme == "cbl" else "wbi")
    lock = CBLLock(m) if scheme == "cbl" else TTSLock(m)
    p = m.processor(0)

    def w():
        yield from p.acquire(lock)
        yield from p.compute(50)
        yield from p.release(lock)

    m.spawn(w())
    m.run()
    return m.sim.now, m.net.message_count


def _barrier(n, scheme):
    m = _machine(n, "primitives" if scheme == "cbl" else "wbi")
    bar = HWBarrier(m, n=n) if scheme == "cbl" else SWBarrier(m, n=n)

    def w(p):
        yield from bar.wait(p)

    for i in range(n):
        m.spawn(w(m.processor(i)))
    m.run()
    return m.sim.now, m.net.message_count


def test_table3_simulated_serial_lock(benchmark):
    res = benchmark.pedantic(
        lambda: {s: _serial_lock(s) for s in ("cbl", "wbi")}, rounds=1, iterations=1
    )
    rows = [[s, fmt(res[s][0], 0), res[s][1]] for s in ("wbi", "cbl")]
    print_table("Table 3 (simulated): serial lock", ["scheme", "time", "messages"], rows)
    # CBL: exactly REQ + GRANT + RELEASE.
    assert res["cbl"][1] == 3
    assert res["cbl"][1] < res["wbi"][1]
    assert res["cbl"][0] < res["wbi"][0]


@pytest.mark.parametrize("n", [8, 16])
def test_table3_simulated_parallel_lock(benchmark, n):
    res = benchmark.pedantic(
        lambda: {s: _parallel_lock(n, s) for s in ("cbl", "wbi")}, rounds=1, iterations=1
    )
    rows = [[s, fmt(res[s][0], 0), res[s][1]] for s in ("wbi", "cbl")]
    print_table(
        f"Table 3 (simulated): parallel lock, n={n}", ["scheme", "time", "messages"], rows
    )
    # CBL messages linear in n (~5n); WBI superlinear.
    assert res["cbl"][1] <= 6 * n
    assert res["wbi"][1] > res["cbl"][1] * 2
    assert res["cbl"][0] < res["wbi"][0]


def test_table3_simulated_parallel_lock_scaling(benchmark):
    """The O(n) vs O(n^2) separation grows with n."""

    def sweep():
        return {n: {s: _parallel_lock(n, s) for s in ("cbl", "wbi")} for n in (4, 8, 16)}

    res = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [n, res[n]["wbi"][1], res[n]["cbl"][1], fmt(res[n]["wbi"][1] / res[n]["cbl"][1])]
        for n in res
    ]
    print_table(
        "Parallel-lock message scaling", ["n", "WBI msgs", "CBL msgs", "ratio"], rows
    )
    ratios = [res[n]["wbi"][1] / res[n]["cbl"][1] for n in (4, 8, 16)]
    assert ratios[2] > ratios[0]  # separation widens with n


@pytest.mark.parametrize("n", [8, 16])
def test_table3_simulated_barrier(benchmark, n):
    res = benchmark.pedantic(
        lambda: {s: _barrier(n, s) for s in ("cbl", "wbi")}, rounds=1, iterations=1
    )
    rows = [[s, fmt(res[s][0], 0), res[s][1]] for s in ("wbi", "cbl")]
    print_table(
        f"Table 3 (simulated): barrier, n={n}", ["scheme", "time", "messages"], rows
    )
    # Hardware barrier: 2 messages per arrival + n releases = 3n total.
    assert res["cbl"][1] == 3 * n
    assert res["cbl"][1] < res["wbi"][1]
    assert res["cbl"][0] < res["wbi"][0]
