"""Figure 6 — buffered vs sequential consistency, fine granularity.

BC-CBL vs SC-CBL on the work-queue model.  The paper finds BC improves
completion time for most cases, "but the improvement is not very
impressive": global writes occur only with probability
sh x write_ratio ~= 0.0045 during task execution, so there is little write
latency to hide at fine grain too (the queue accesses contribute more).
"""

from conftest import fmt, print_table
from figures_common import run_point

NS = (2, 4, 8, 16, 32)
GRAIN = "fine"


def test_fig6(benchmark):
    def sweep_bc_sc():
        return {
            label: {n: run_point(n, "queue", "cbl", GRAIN, consistency=c) for n in NS}
            for label, c in (("SC-CBL", "sc"), ("BC-CBL", "bc"))
        }

    data = benchmark.pedantic(sweep_bc_sc, rounds=1, iterations=1)
    rows = [
        [label] + [fmt(data[label][n], 0) for n in NS] for label in ("SC-CBL", "BC-CBL")
    ]
    rows.append(
        ["improvement %"]
        + [fmt(100 * (1 - data["BC-CBL"][n] / data["SC-CBL"][n]), 1) for n in NS]
    )
    print_table(
        f"Figure 6: BC vs SC completion time, {GRAIN} grain",
        ["series"] + [f"n={n}" for n in NS],
        rows,
    )
    # BC never loses, wins somewhere, and the win stays modest (<40%).
    wins = 0
    for n in NS:
        assert data["BC-CBL"][n] <= data["SC-CBL"][n] * 1.02, n
        if data["BC-CBL"][n] < data["SC-CBL"][n]:
            wins += 1
    assert wins >= len(NS) // 2
    worst_gain = max(1 - data["BC-CBL"][n] / data["SC-CBL"][n] for n in NS)
    assert worst_gain < 0.4
    benchmark.extra_info["series"] = data
