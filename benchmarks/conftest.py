"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper: it
sweeps the paper's parameter, prints the same rows/series the paper
reports (captured with ``pytest benchmarks/ --benchmark-only -s`` or in
the benchmark's ``extra_info``), and asserts the qualitative shape —
who wins, roughly by how much, where the crossover falls.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


def print_table(title: str, headers: list, rows: list) -> None:
    """Render one paper-style table to stdout."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def fmt(x, nd=1):
    if isinstance(x, float):
        return f"{x:.{nd}f}"
    return str(x)
