"""Extension — what does *hardware* queueing buy over a software queue lock?

The paper compares CBL against the spin locks of its era.  The modern
baseline is MCS: also FIFO, also local spinning, but built from ordinary
atomic operations.  Both scale linearly; the hardware lock keeps a
constant-factor edge because (a) its enqueue is one message instead of a
swap + pointer write, (b) the grant carries the protected cache line, and
(c) hand-off is two network transits instead of a coherence miss chain.

This sweep quantifies that edge on the work-queue model — the paper's
contended regime — so a reader can judge whether QOLB-style hardware is
worth it relative to just using MCS.
"""

import pytest

from conftest import fmt, print_table
from repro import Machine, MachineConfig
from repro.workloads import WorkQueueParams, WorkQueueWorkload

NS = (4, 8, 16, 32)
SCHEMES = ("cbl", "mcs", "ticket")


def run(n, scheme):
    protocol = "primitives" if scheme == "cbl" else "wbi"
    m = Machine(MachineConfig(n_nodes=n, seed=1), protocol=protocol)
    wl = WorkQueueWorkload(
        m, WorkQueueParams(n_tasks=4 * n, grain_size=50), lock_scheme=scheme
    )
    res = wl.run()
    return res.completion_time, res.messages


def test_cbl_vs_mcs_scaling(benchmark):
    data = benchmark.pedantic(
        lambda: {s: {n: run(n, s) for n in NS} for s in SCHEMES},
        rounds=1,
        iterations=1,
    )
    rows = [
        [s] + [f"{fmt(data[s][n][0], 0)} / {data[s][n][1]}" for n in NS]
        for s in SCHEMES
    ]
    print_table(
        "Work queue: hardware vs software queue locks (cycles / messages)",
        ["scheme"] + [f"n={n}" for n in NS],
        rows,
    )
    big = NS[-1]
    # Both queue locks scale: neither collapses the way TTS does (its n=32
    # value is ~5x CBL's in Figure 4); MCS stays within ~3x of CBL.
    assert data["mcs"][big][0] < 3.0 * data["cbl"][big][0]
    # But the hardware lock keeps a consistent edge at every size...
    for n in NS:
        assert data["cbl"][n][0] <= data["mcs"][n][0], n
    # ...and a large message-count advantage (no coherence miss chains).
    assert data["cbl"][big][1] < data["mcs"][big][1]
    benchmark.extra_info["series"] = {
        s: {n: {"time": v[0], "msgs": v[1]} for n, v in d.items()}
        for s, d in data.items()
    }
