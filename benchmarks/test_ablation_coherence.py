"""Ablation — reader-initiated coherence details.

(a) multicast vs chain update propagation (the (n-1)||C_B question);
(b) per-word dirty bits: concurrent writers to one block are safe and
    cheap on the primitives machine, while WBI ping-pongs the line;
(c) selective RESET-UPDATE in phased workloads (also exercised by the FFT
    workload tests).
"""

import pytest

from conftest import fmt, print_table
from repro import Machine, MachineConfig
from repro.network import MessageType
from repro.workloads import run_fft, run_linsolver


def test_ru_propagation_mode(benchmark):
    def run(mode):
        r = run_linsolver(
            16, "read-update", iterations=4, cache_blocks=256, cache_assoc=2,
            ru_propagation=mode,
        )
        return r.completion_time

    res = benchmark.pedantic(
        lambda: {m: run(m) for m in ("multicast", "chain")}, rounds=1, iterations=1
    )
    print_table(
        "RU propagation ablation (solver, n=16)",
        ["mode", "completion (cycles)"],
        [[k, fmt(v, 0)] for k, v in res.items()],
    )
    # The hop-by-hop hardware chain serializes the fan-out.
    assert res["multicast"] < res["chain"]
    benchmark.extra_info["results"] = res


def false_sharing_run(protocol, n=8, writes=16, seed=0):
    """n writers each hammer a distinct word of ONE block."""
    cfg = MachineConfig(n_nodes=n, cache_blocks=256, cache_assoc=2, seed=seed)
    m = Machine(cfg, protocol=protocol)
    block = m.alloc_block(2)  # one block; n <= 8 words with wpb=4 -> use 2
    addrs = [m.amap.word_addr(block + i // 4, i % 4) for i in range(n)]

    def w(p):
        for v in range(writes):
            if protocol == "primitives":
                yield from p.write(addrs[p.node_id], v)
            else:
                yield from p.write(addrs[p.node_id], v)
            yield from p.compute(5)
        if protocol == "primitives":
            # Push local dirty words out so memory gets everything.
            yield from p.write_global(addrs[p.node_id], writes)
            yield from p.flush()

    for i in range(n):
        m.spawn(w(m.processor(i)))
    m.run()
    return m.sim.now, m.net.message_count, m


def test_false_sharing_elimination(benchmark):
    """Per-word dirty bits kill false sharing: the primitives machine's
    colocated writers generate a fraction of WBI's traffic."""
    res = benchmark.pedantic(
        lambda: {p: false_sharing_run(p)[:2] for p in ("primitives", "wbi")},
        rounds=1,
        iterations=1,
    )
    print_table(
        "False-sharing ablation (8 writers, 1-2 blocks)",
        ["protocol", "completion", "messages"],
        [[p, fmt(v[0], 0), v[1]] for p, v in res.items()],
    )
    prim_time, prim_msgs = res["primitives"]
    wbi_time, wbi_msgs = res["wbi"]
    assert prim_msgs < wbi_msgs / 2  # no line ping-pong
    assert prim_time < wbi_time
    benchmark.extra_info["results"] = {
        p: {"time": v[0], "msgs": v[1]} for p, v in res.items()
    }


def test_false_sharing_values_survive(benchmark):
    """Despite colocated concurrent writers, per-word write-backs lose
    nothing (the Section 3 item 6 lost-update problem): every writer's
    final value reaches memory."""
    _t, _m, machine = benchmark.pedantic(
        lambda: false_sharing_run("primitives", n=8, writes=16), rounds=1, iterations=1
    )
    # The workload allocated its two data blocks first (block ids 0 and 1).
    addrs = [machine.amap.word_addr(i // 4, i % 4) for i in range(8)]
    for addr in addrs:
        assert machine.peek_memory(addr) == 16


def test_selective_reset_update(benchmark):
    res = benchmark.pedantic(
        lambda: {
            "selective": run_fft(8, selective=True, cache_blocks=256, cache_assoc=2).extra["ru_updates"],
            "accumulate": run_fft(8, selective=False, cache_blocks=256, cache_assoc=2).extra["ru_updates"],
        },
        rounds=1,
        iterations=1,
    )
    print_table(
        "RESET-UPDATE ablation (FFT phases, n=8)",
        ["subscriptions", "update messages"],
        [[k, v] for k, v in res.items()],
    )
    assert res["selective"] < res["accumulate"]
    benchmark.extra_info["results"] = res
